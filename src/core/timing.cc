#include "core/timing.hh"

#include <algorithm>
#include <bit>

#include "bpred/factory.hh"
#include "bpred/hybrid.hh"
#include "core/refmodel.hh"
#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace interf::core
{

double
RunResult::cpi() const
{
    INTERF_ASSERT(instructions > 0);
    return static_cast<double>(cycles) / static_cast<double>(instructions);
}

double
RunResult::mpki() const
{
    return perKilo(mispredicts);
}

double
RunResult::perKilo(Count events) const
{
    INTERF_ASSERT(instructions > 0);
    return 1000.0 * static_cast<double>(events) /
           static_cast<double>(instructions);
}

Machine::Machine(const MachineConfig &config)
    : cfg_(config),
      hierarchy_(config.hierarchy),
      predictor_(bpred::makePredictor(config.predictorSpec)),
      btb_(config.btbSets, config.btbWays),
      ras_(config.rasDepth)
{
    cfg_.validate();
}

void
Machine::resetState()
{
    hierarchy_.reset();
    predictor_->reset();
    btb_.reset();
    ras_.reset();
}

RunResult
Machine::run(const trace::Program &prog, const trace::Trace &trace,
             const layout::CodeLayout &code, const layout::HeapLayout &heap)
{
    return run(prog, trace, code, heap, layout::PageMap());
}

RunResult
Machine::run(const trace::Program &prog, const trace::Trace &trace,
             const layout::CodeLayout &code, const layout::HeapLayout &heap,
             const layout::PageMap &pages)
{
    trace::ReplayPlan plan(prog, trace);
    trace::LayoutTables tables(plan, code, heap, pages,
                               cfg_.hierarchy.l1i.lineBytes);
    return replay(plan, tables);
}

RunResult
Machine::runReference(const trace::Program &prog, const trace::Trace &trace,
                      const layout::CodeLayout &code,
                      const layout::HeapLayout &heap,
                      const layout::PageMap &pages)
{
    // Fresh reference components per run: power-on state, and fully
    // independent of the optimized SoA structures the replay kernel
    // uses (see core/refmodel.hh). The predictor is driven through its
    // virtual interface, as the pre-plan measurement path did.
    refmodel::RefHierarchy hierarchy(cfg_.hierarchy);
    refmodel::RefBtb btb(cfg_.btbSets, cfg_.btbWays);
    bpred::PredictorPtr predictor = bpred::makePredictor(cfg_.predictorSpec);
    bpred::ReturnAddressStack ras(cfg_.rasDepth);
    RunResult res;

    const u32 line_bytes = cfg_.hierarchy.l1i.lineBytes;
    const u64 line_mask = ~static_cast<u64>(line_bytes - 1);

    Cycle cycles = 0;
    u32 slot_carry = 0;          ///< Partial-width issue remainder.
    Addr last_fetch_line = ~Addr{0};

    // Data-miss overlap state: misses within robSize retired
    // instructions of the cluster leader share its latency (up to
    // maxMlp outstanding).
    u64 cluster_start_inst = 0;
    u32 cluster_outstanding = 0;

    size_t mem_cursor = 0;

    auto mem_latency = [&](cache::HitLevel level) -> u32 {
        switch (level) {
          case cache::HitLevel::L1:
            return cfg_.l1Latency;
          case cache::HitLevel::L2:
            return cfg_.l2Latency;
          case cache::HitLevel::Memory:
            return cfg_.memLatency;
        }
        panic("bad HitLevel");
    };

    // Warmup: execute the first part of the trace normally but start
    // the counters afterwards (see MachineConfig::warmupFraction).
    const size_t warmup_events = static_cast<size_t>(
        static_cast<double>(trace.events.size()) * cfg_.warmupFraction);

    for (size_t ev_idx = 0; ev_idx < trace.events.size(); ++ev_idx) {
        if (ev_idx == warmup_events) {
            res = RunResult();
            cycles = 0;
            slot_carry = 0;
            cluster_start_inst = 0;
            cluster_outstanding = 0;
            hierarchy.clearStats();
        }
        const auto &ev = trace.events[ev_idx];
        const trace::BasicBlock &bb = prog.block(ev.proc, ev.block);
        Addr addr = code.blockAddr(ev.proc, ev.block);

        // ---- Front end: fetch the lines this block occupies.
        Addr first_line = addr & line_mask;
        Addr last_line = (addr + bb.bytes - 1) & line_mask;
        for (Addr line = first_line; line <= last_line;
             line += line_bytes) {
            if (line == last_fetch_line)
                continue; // same fetch group continuing
            last_fetch_line = line;
            cache::HitLevel level =
                hierarchy.fetchInst(pages.translate(line));
            if (level != cache::HitLevel::L1) {
                // Demand I-miss stalls fetch; the decode queue hides a
                // few cycles of it.
                u32 lat = mem_latency(level);
                cycles += lat > 4 ? lat - 4 : 0;
            }
        }

        // ---- Issue/retire: width-limited plus intrinsic dependence
        // stalls.
        slot_carry += bb.nInsts;
        cycles += slot_carry / cfg_.width;
        slot_carry %= cfg_.width;
        cycles += bb.extraExecCycles;
        res.instructions += bb.nInsts;

        // ---- Data accesses.
        u32 last_load_latency = 0; ///< Resolution time of the newest load.
        for (const auto &ref : bb.memRefs) {
            Addr daddr = heap.dataAddr(trace.memIds[mem_cursor++]);
            cache::HitLevel level =
                hierarchy.accessData(pages.translate(daddr));
            u32 lat = mem_latency(level);
            if (!ref.isStore)
                last_load_latency = lat;
            if (level == cache::HitLevel::L1)
                continue; // L1 hits are hidden by the OoO window
            // Miss clustering: misses within the ROB reach of the
            // cluster leader (and below the MLP limit) ride the same
            // stall; the leader pays full latency.
            bool overlaps =
                res.instructions - cluster_start_inst <= cfg_.robSize &&
                cluster_outstanding > 0 &&
                cluster_outstanding < cfg_.maxMlp;
            if (overlaps) {
                ++cluster_outstanding;
            } else {
                cycles += lat;
                cluster_start_inst = res.instructions;
                cluster_outstanding = 1;
            }
        }

        // ---- Branch.
        const trace::StaticBranch &br = bb.branch;
        if (!br.exists())
            continue;
        Addr branch_pc = code.branchAddr(ev.proc, ev.block);
        bool mispredicted = false;

        if (br.isConditional()) {
            ++res.condBranches;
            bool taken = ev.taken != 0;
            bool pred = predictor->predictAndTrain(branch_pc, taken);
            if (pred != taken) {
                ++res.mispredicts;
                mispredicted = true;
                // Penalty: front-end refill plus the branch's
                // resolution time. A branch waiting on a missing load
                // resolves only when the load returns.
                u32 resolve = br.dependsOnLoad && last_load_latency > 0
                                  ? last_load_latency
                                  : bb.extraExecCycles + 1;
                cycles += cfg_.frontendDepth + resolve;
            }
        }

        // ---- Returns: predicted through the finite return-address
        // stack; a pop that disagrees with the actual fall-back target
        // (stack overflow on deep chains) costs a full redirect.
        if (br.kind == trace::OpClass::Return) {
            Addr predicted = ras.pop();
            Addr actual = 0;
            if (ev_idx + 1 < trace.events.size()) {
                const auto &next = trace.events[ev_idx + 1];
                actual = code.blockAddr(next.proc, next.block);
            }
            if (actual != 0 && predicted != actual) {
                ++res.rasMispredicts;
                cycles += cfg_.frontendDepth;
            }
            last_fetch_line = ~Addr{0};
            continue;
        }

        // ---- Target prediction (BTB) for taken redirects.
        if (ev.taken && br.kind != trace::OpClass::Return) {
            Addr target;
            switch (br.kind) {
              case trace::OpClass::Call: {
                target = code.procBase(br.targetProc);
                // Push the fall-through (return) address.
                u32 next_block = static_cast<u32>(ev.block) + 1;
                if (next_block < prog.proc(ev.proc).blocks.size())
                    ras.push(code.blockAddr(ev.proc, next_block));
                break;
              }
              case trace::OpClass::IndirectBranch:
                target = code.blockAddr(
                    br.targetProc,
                    static_cast<u32>(br.targetBlock) + ev.indirectChoice);
                break;
              default:
                target = code.blockAddr(br.targetProc, br.targetBlock);
            }
            refmodel::RefBtbResult hit = btb.lookup(branch_pc);
            bool target_ok = hit.hit && hit.target == target;
            if (!target_ok) {
                ++res.btbMisses;
                // A direction mispredict already paid the full redirect;
                // otherwise a taken branch with no (or a wrong) target
                // costs a misfetch, and a wrong *indirect* target costs
                // a full pipeline refill.
                if (!mispredicted) {
                    if (br.kind == trace::OpClass::IndirectBranch &&
                        hit.hit) {
                        cycles += cfg_.frontendDepth;
                    } else {
                        cycles += cfg_.misfetchPenalty;
                    }
                }
            }
            btb.update(branch_pc, target);
            // Any taken branch breaks the sequential fetch run.
            last_fetch_line = ~Addr{0};
        }
    }

    INTERF_ASSERT(mem_cursor == trace.memIds.size());

    auto hs = hierarchy.stats();
    res.l1iMisses = hs.l1i.misses;
    res.l1dMisses = hs.l1d.misses;
    res.l2Misses = hs.l2.misses;
    res.l2InstMisses = hs.l2InstMisses;
    res.l2PrefMisses = hs.l2PrefMisses;
    res.l2DataMisses = hs.l2DataMisses;
    res.cycles = cycles;
    return res;
}

/**
 * One layout lane's machine state for a batched replay: the same
 * microarchitectural components a Machine owns, plus the per-lane
 * predictor devirtualization. Pooled in Machine::lanePool_ and reset()
 * to power-on state per batch (reset is exactly power-on for every
 * component — the single-lane kernel's resetState() relies on the same
 * guarantee). The hot per-event scalars (cycles, cluster state, fetch
 * memo) intentionally live in dense arrays inside the kernel, not
 * here: all K lanes' copies of one scalar then share a host cache line
 * instead of sitting one lane stride apart.
 */
struct BatchLaneState
{
    explicit BatchLaneState(const MachineConfig &cfg)
        : hierarchy(cfg.hierarchy),
          predictor(bpred::makePredictor(cfg.predictorSpec)),
          hybrid(dynamic_cast<bpred::HybridPredictor *>(predictor.get())),
          btb(cfg.btbSets, cfg.btbWays),
          ras(cfg.rasDepth)
    {
    }

    void reset()
    {
        hierarchy.reset();
        predictor->reset();
        btb.reset();
        ras.reset();
        // The way memos survive reset untouched: a hint is verified
        // with a tag load before use, so stale entries cost a rescan
        // at worst and can never change a result.
    }

    /**
     * Grow the verified way memos to this plan's key spaces (never
     * shrunk: a pooled lane may serve plans of different sizes, and
     * stale contents are harmless by construction). 0xff is "no hint".
     * Keys are replay-plan indices, which the kernel already has in
     * hand: the data memo by memory-universe entry, the fetch/prefetch
     * memos by (site, first-or-later line), the BTB memo by site.
     */
    void sizeMemos(size_t n_universe, size_t n_sites)
    {
        if (dataWayMemo.size() < n_universe)
            dataWayMemo.resize(n_universe, 0xff);
        if (fetchWayMemo.size() < n_sites * 2) {
            fetchWayMemo.resize(n_sites * 2, 0xff);
            prefWayMemo.resize(n_sites * 2, 0xff);
        }
        if (btbWayMemo.size() < n_sites)
            btbWayMemo.resize(n_sites, 0xff);
    }

    bool predictAndTrain(Addr pc, bool taken)
    {
        return hybrid ? hybrid->predictAndTrain(pc, taken)
                      : predictor->predictAndTrain(pc, taken);
    }

    cache::MemoryHierarchy hierarchy;
    bpred::PredictorPtr predictor;
    bpred::HybridPredictor *hybrid;
    bpred::Btb btb;
    bpred::ReturnAddressStack ras;

    /** @{ Verified way memos (see sizeMemos). */
    std::vector<u8> dataWayMemo;  ///< By memory-universe index.
    std::vector<u8> fetchWayMemo; ///< By site * 2 + (line > first).
    std::vector<u8> prefWayMemo;  ///< By site * 2 + (line > first).
    std::vector<u8> btbWayMemo;   ///< By site index.
    /** @} */
};

Machine::~Machine() = default;

u64
Machine::laneStateBytes() const
{
    // The Machine's own components are config-identical to a lane's,
    // so their sizes stand in without allocating a lane.
    return hierarchy_.hotStateBytes() + predictor_->stateBytes() +
           btb_.hotStateBytes() + ras_.stateBytes();
}

u64
Machine::laneMemoBytes(const trace::ReplayPlan &plan)
{
    // One byte per hint (see BatchLaneState::sizeMemos): data by
    // universe entry, fetch and prefetch by (site, first-or-later
    // line), BTB by site.
    return plan.memUniverse.size() +
           5 * static_cast<u64>(plan.siteCount());
}

MemoHintStats
Machine::memoHintStats() const
{
    MemoHintStats s;
    auto add_hier = [&s](const cache::MemoryHierarchy &h) {
        cache::HintStats hs = h.hintStats();
        s.probes += hs.probes;
        s.verified += hs.verified;
    };
    auto add_btb = [&s](const bpred::Btb &b) {
        s.probes += b.hintStats().probes;
        s.verified += b.hintStats().verified;
    };
    add_hier(hierarchy_);
    add_btb(btb_);
    for (const auto &lane : lanePool_) {
        add_hier(lane->hierarchy);
        add_btb(lane->btb);
    }
    return s;
}

void
Machine::setHintCounting(bool on)
{
    countHints_ = on;
    hierarchy_.setHintCounting(on);
    btb_.setHintCounting(on);
    for (const auto &lane : lanePool_) {
        lane->hierarchy.setHintCounting(on);
        lane->btb.setHintCounting(on);
    }
}

RunResult
Machine::replay(const trace::ReplayPlan &plan,
                const trace::LayoutTables &tables)
{
    INTERF_ASSERT(tables.hasData());
    INTERF_ASSERT(tables.siteAddr.size() == plan.siteCount());
    INTERF_ASSERT(tables.dataAddr.size() == plan.memCount());
    INTERF_TELEM_COUNT("replay.calls", 1);
    INTERF_TELEM_COUNT("replay.events", plan.eventCount());
    if (tables.identityPages())
        return replayImpl<true, false>(plan, tables);
    // The pre-translated fetch-line table only applies when it was
    // built for this machine's L1I line size.
    if (tables.fetchLineBytes() == cfg_.hierarchy.l1i.lineBytes &&
        tables.siteLineStart.size() == plan.siteCount() + 1)
        return replayImpl<false, true>(plan, tables);
    return replayImpl<false, false>(plan, tables);
}

/**
 * The dense replay kernel. Mirrors runReference() block for block —
 * the per-event model steps and their order are identical, only the
 * operand sources differ: flat plan/table arrays instead of Program
 * traversal and per-access address computation. Any behavioural edit
 * here must be made in runReference() too (test_replay.cc enforces
 * equality).
 */
template <bool IdentityPages, bool UseLineTable>
RunResult
Machine::replayImpl(const trace::ReplayPlan &plan,
                    const trace::LayoutTables &tables)
{
    using trace::ReplayPlan;

    resetState();
    RunResult res;

    const u32 line_bytes = cfg_.hierarchy.l1i.lineBytes;
    const u64 line_mask = ~static_cast<u64>(line_bytes - 1);

    Cycle cycles = 0;
    u32 slot_carry = 0;
    Addr last_fetch_line = ~Addr{0};
    u64 cluster_start_inst = 0;
    u32 cluster_outstanding = 0;
    size_t mem_cursor = 0;

    const layout::PageMap &pages = tables.pages();
    const Addr *site_addr = tables.siteAddr.data();
    const Addr *branch_addr = tables.branchAddr.data();
    const Addr *data_addr = tables.dataAddr.data();
    const Addr *line_phys = tables.linePhys.data();
    const u32 *site_line_start = tables.siteLineStart.data();
    const u32 *ev_site = plan.site.data();
    const u32 *ev_bytes = plan.bytes.data();
    const u16 *ev_insts = plan.nInsts.data();
    const u8 *ev_extra = plan.extraExecCycles.data();
    const u16 *ev_nmem = plan.nMem.data();
    const u8 *ev_flags = plan.flags.data();
    const u32 *ev_target = plan.targetSite.data();
    const u32 *ev_ras_push = plan.rasPushSite.data();
    const u32 *ev_return = plan.returnSite.data();
    const u8 *mem_is_store = plan.memIsStore.data();

    // Devirtualize the hottest polymorphic call: the standard machine
    // predictor is the hybrid, whose final class lets the direct call
    // inline the whole predict-and-train chain. Other predictors fall
    // back to the virtual dispatch; results are identical either way.
    auto *hybrid = dynamic_cast<bpred::HybridPredictor *>(predictor_.get());
    auto predict_and_train = [&](Addr pc, bool taken) -> bool {
        return hybrid ? hybrid->predictAndTrain(pc, taken)
                      : predictor_->predictAndTrain(pc, taken);
    };

    // HitLevel is a dense enum (L1, L2, Memory); lookups replace the
    // reference loop's switch and its fetch-stall conditional.
    const u32 lat_by_level[3] = {cfg_.l1Latency, cfg_.l2Latency,
                                 cfg_.memLatency};
    auto stall = [](u32 lat) -> Cycle { return lat > 4 ? lat - 4 : 0; };
    const Cycle fetch_stall_by_level[3] = {
        0, stall(cfg_.l2Latency), stall(cfg_.memLatency)};
    auto mem_latency = [&](cache::HitLevel level) -> u32 {
        return lat_by_level[static_cast<u32>(level)];
    };

    // Issue width is a runtime config value, so the reference loop's
    // `/ width` is a hardware divide on every event; all modeled
    // machines use a power-of-two width, which reduces to shift/mask.
    const u32 width = cfg_.width;
    const bool width_pow2 = (width & (width - 1)) == 0;
    const u32 width_shift =
        static_cast<u32>(std::countr_zero(width ? width : 1u));

    const size_t n = plan.eventCount();
    const size_t warmup_events = static_cast<size_t>(
        static_cast<double>(n) * cfg_.warmupFraction);

    // The event loop body, over [lo, hi). Split at the warmup boundary
    // so the boundary test is not paid per event (the reference loop
    // checks `ev_idx == warmup_events` each iteration; hoisting it is
    // behaviour-preserving).
    // lint:hot-begin replay event loop (tools/lint_hotpath.py)
    auto run_events = [&](size_t lo, size_t hi) {
    for (size_t ev_idx = lo; ev_idx < hi; ++ev_idx) {
        const u32 s = ev_site[ev_idx];
        const Addr addr = site_addr[s];

        // ---- Front end: fetch the lines this block occupies. The
        // last_fetch_line dedup runs on virtual lines; the hierarchy
        // sees physical ones (pre-translated per site when the line
        // table matches this machine's line size).
        Addr first_line = addr & line_mask;
        Addr last_line = (addr + ev_bytes[ev_idx] - 1) & line_mask;
        u32 li = UseLineTable ? site_line_start[s] : 0;
        for (Addr line = first_line; line <= last_line;
             line += line_bytes, ++li) {
            if (line == last_fetch_line)
                continue; // same fetch group continuing
            last_fetch_line = line;
            Addr paddr = IdentityPages
                             ? line
                             : (UseLineTable ? line_phys[li]
                                             : pages.translate(line));
            cache::HitLevel level = hierarchy_.fetchInst(paddr);
            // Demand I-miss stalls fetch; the decode queue hides a few
            // cycles (precomputed per level, zero for L1 hits).
            cycles += fetch_stall_by_level[static_cast<u32>(level)];
        }

        // ---- Issue/retire.
        slot_carry += ev_insts[ev_idx];
        if (width_pow2) {
            cycles += slot_carry >> width_shift;
            slot_carry &= width - 1;
        } else {
            cycles += slot_carry / width;
            slot_carry %= width;
        }
        cycles += ev_extra[ev_idx];
        res.instructions += ev_insts[ev_idx];

        // ---- Data accesses (addresses pre-translated in the tables).
        // L1D hits (the common, well-predicted case) skip the cluster
        // bookkeeping entirely; a select-based rewrite measured slower
        // because it puts the bookkeeping on every access's dependence
        // chain.
        u32 last_load_latency = 0;
        for (u32 m = ev_nmem[ev_idx]; m > 0; --m, ++mem_cursor) {
            cache::HitLevel level =
                hierarchy_.accessData(data_addr[mem_cursor]);
            u32 lat = mem_latency(level);
            // Loads update the resolution latency.
            last_load_latency =
                mem_is_store[mem_cursor] ? last_load_latency : lat;
            if (level != cache::HitLevel::L1) {
                bool overlaps =
                    res.instructions - cluster_start_inst <=
                        cfg_.robSize &&
                    cluster_outstanding > 0 &&
                    cluster_outstanding < cfg_.maxMlp;
                if (overlaps) {
                    ++cluster_outstanding;
                } else {
                    cycles += lat;
                    cluster_start_inst = res.instructions;
                    cluster_outstanding = 1;
                }
            }
        }

        // ---- Branch.
        const u8 f = ev_flags[ev_idx];
        if (!(f & ReplayPlan::kHasBranch))
            continue;
        Addr branch_pc = branch_addr[s];
        bool mispredicted = false;

        if (f & ReplayPlan::kCond) {
            ++res.condBranches;
            bool taken = (f & ReplayPlan::kTaken) != 0;
            bool pred = predict_and_train(branch_pc, taken);
            if (pred != taken) {
                ++res.mispredicts;
                mispredicted = true;
                u32 resolve = (f & ReplayPlan::kDependsOnLoad) &&
                                      last_load_latency > 0
                                  ? last_load_latency
                                  : static_cast<u32>(ev_extra[ev_idx]) + 1;
                cycles += cfg_.frontendDepth + resolve;
            }
        }

        // ---- Returns through the return-address stack.
        if (f & ReplayPlan::kReturn) {
            Addr predicted = ras_.pop();
            Addr actual = ev_return[ev_idx] != ReplayPlan::kNoSite
                              ? site_addr[ev_return[ev_idx]]
                              : 0;
            if (actual != 0 && predicted != actual) {
                ++res.rasMispredicts;
                cycles += cfg_.frontendDepth;
            }
            last_fetch_line = ~Addr{0};
            continue;
        }

        // ---- Target prediction (BTB) for taken redirects.
        if (f & ReplayPlan::kTaken) {
            // The BTB stores the plan's site index, not the 8-byte
            // target address: block addresses are injective per layout
            // (every block has nonzero size), so site-token equality
            // is exactly target-address equality — same hit/miss
            // stream as the reference loop's address-tagged BTB.
            const u32 target_site = ev_target[ev_idx];
            if ((f & ReplayPlan::kCall) &&
                ev_ras_push[ev_idx] != ReplayPlan::kNoSite)
                ras_.push(site_addr[ev_ras_push[ev_idx]]);
            // Fused lookup + update: one tag scan (same outcome as the
            // reference loop's separate calls).
            bpred::BtbResult hit =
                btb_.lookupUpdate(branch_pc, target_site);
            bool target_ok = hit.hit && hit.target == target_site;
            if (!target_ok) {
                ++res.btbMisses;
                if (!mispredicted) {
                    if ((f & ReplayPlan::kIndirect) && hit.hit) {
                        cycles += cfg_.frontendDepth;
                    } else {
                        cycles += cfg_.misfetchPenalty;
                    }
                }
            }
            last_fetch_line = ~Addr{0};
        }
    }
    };
    // lint:hot-end

    if (warmup_events < n) {
        run_events(0, warmup_events);
        // End of warmup: forget everything measured so far, keep the
        // microarchitectural state (exactly the reference loop's
        // mid-loop clear).
        res = RunResult();
        cycles = 0;
        slot_carry = 0;
        cluster_start_inst = 0;
        cluster_outstanding = 0;
        hierarchy_.clearStats();
        run_events(warmup_events, n);
    } else {
        run_events(0, n);
    }

    INTERF_ASSERT(mem_cursor == plan.memCount());

    auto hs = hierarchy_.stats();
    res.l1iMisses = hs.l1i.misses;
    res.l1dMisses = hs.l1d.misses;
    res.l2Misses = hs.l2.misses;
    res.l2InstMisses = hs.l2InstMisses;
    res.l2PrefMisses = hs.l2PrefMisses;
    res.l2DataMisses = hs.l2DataMisses;
    res.cycles = cycles;
    return res;
}

std::vector<RunResult>
Machine::replayBatch(const trace::ReplayPlan &plan,
                     const trace::BatchedLayoutTables &tables)
{
    const u32 k = tables.lanes();
    INTERF_ASSERT(k >= 1 &&
                  k <= trace::BatchedLayoutTables::kMaxLanes);
    INTERF_ASSERT(tables.siteAddr.size() == plan.siteCount() * k);
    // The kernel reads data addresses from the universe-indexed table;
    // the per-position stream is optional (only the fuse-from-
    // LayoutTables constructor materializes it, for verification).
    INTERF_ASSERT(tables.uniAddr.size() == plan.memUniverse.size() * k);
    INTERF_ASSERT(tables.dataAddr.empty() ||
                  tables.dataAddr.size() == plan.memCount() * k);
    INTERF_TELEM_COUNT("replay.batch_calls", 1);
    // Decode amortization is events_decoded vs events: the batched
    // pass decodes each event once for k lane replays of it.
    INTERF_TELEM_COUNT("replay.events_decoded", plan.eventCount());
    INTERF_TELEM_COUNT("replay.events", plan.eventCount() * k);
    INTERF_TELEM_HISTOGRAM("replay.batch.lanes",
                           (std::vector<u64>{1, 2, 4, 8, 16}), k);
    INTERF_TELEM_GAUGE("replay.lane_state_bytes",
                       static_cast<i64>(laneStateBytes()));
    INTERF_TELEM_GAUGE("replay.lane_memo_bytes",
                       static_cast<i64>(laneMemoBytes(plan)));
    if (tables.allIdentityPages())
        return replayBatchDispatch<true, false>(plan, tables);
    if (tables.allLineTablesFor(cfg_.hierarchy.l1i.lineBytes))
        return replayBatchDispatch<false, true>(plan, tables);
    // Generic fallback: each lane translates through its own PageMap
    // at replay time. Correct for any mix of lane page modes.
    return replayBatchDispatch<false, false>(plan, tables);
}

template <bool IdentityPages, bool UseLineTable>
std::vector<RunResult>
Machine::replayBatchDispatch(const trace::ReplayPlan &plan,
                             const trace::BatchedLayoutTables &tables)
{
    // The campaign lane widths (and the bench sweep) are 1/2/4/8;
    // compiling those as constants lets every per-event lane loop
    // unroll into straight-line code whose K independent tag scans the
    // host can overlap. Other widths (ragged final groups) take the
    // runtime-width body — same behaviour, less scheduling freedom.
    switch (tables.lanes()) {
      case 1:
        return replayBatchImpl<1, IdentityPages, UseLineTable>(plan, tables);
      case 2:
        return replayBatchImpl<2, IdentityPages, UseLineTable>(plan, tables);
      case 4:
        return replayBatchImpl<4, IdentityPages, UseLineTable>(plan, tables);
      case 8:
        return replayBatchImpl<8, IdentityPages, UseLineTable>(plan, tables);
      default:
        return replayBatchImpl<0, IdentityPages, UseLineTable>(plan, tables);
    }
}

/**
 * The batched replay kernel: replayImpl's event loop with the lane
 * dimension added. The per-event model steps and their order are
 * identical to replayImpl (and so to runReference) within each lane —
 * lanes are fully independent machines, so advancing them in lane
 * order inside each event cannot change any lane's outcome. What the
 * batch shares is the layout-invariant half of each event: one decode
 * of the plan record, one issue-slot computation, one instruction /
 * conditional-branch tally (the event stream is the same for every
 * layout). Tag scans are split probe-then-commit so the K independent
 * packed scans issue back-to-back (cache::Cache::accessFound,
 * bpred::Btb::updateFound). Any behavioural edit here must be made in
 * replayImpl and runReference too; test_replay.cc enforces per-lane
 * equality.
 */
template <u32 kLanes, bool IdentityPages, bool UseLineTable>
std::vector<RunResult>
Machine::replayBatchImpl(const trace::ReplayPlan &plan,
                         const trace::BatchedLayoutTables &tables)
{
    using trace::ReplayPlan;
    // Compile-time lane count when the dispatcher pinned one; scratch
    // arrays are sized exactly then, kMaxLanes for the runtime body.
    constexpr u32 kMax =
        kLanes ? kLanes : trace::BatchedLayoutTables::kMaxLanes;

    const u32 k = kLanes ? kLanes : tables.lanes();
    while (lanePool_.size() < k) {
        lanePool_.push_back(std::make_unique<BatchLaneState>(cfg_));
        lanePool_.back()->hierarchy.setHintCounting(countHints_);
        lanePool_.back()->btb.setHintCounting(countHints_);
    }
    BatchLaneState *lanes[kMax];
    for (u32 l = 0; l < k; ++l) {
        lanes[l] = lanePool_[l].get();
        lanes[l]->reset();
        lanes[l]->sizeMemos(plan.memUniverse.size(), plan.siteCount());
    }

    // Verified way memos, raw per-lane pointers for the hot loop. The
    // model's tag scans are the kernel's dominant cost, and replayed
    // streams are extremely repetitive (the same site fetches the same
    // lines, the same memory id hits the same set): remembering the
    // way an address's line sat in last time and re-verifying it with
    // a single tag load (Cache::probeWayHinted) removes the packed
    // scan from the common path while remaining exact by construction.
    u8 *data_memo[kMax];
    u8 *fetch_memo[kMax];
    u8 *pref_memo[kMax];
    u8 *btb_memo[kMax];
    for (u32 l = 0; l < k; ++l) {
        data_memo[l] = lanes[l]->dataWayMemo.data();
        fetch_memo[l] = lanes[l]->fetchWayMemo.data();
        pref_memo[l] = lanes[l]->prefWayMemo.data();
        btb_memo[l] = lanes[l]->btbWayMemo.data();
    }

    // Per-lane fetch-line translation sources (ragged per lane, so
    // they stay in the per-lane tables rather than the gathered
    // arrays).
    const Addr *lane_line_phys[kMax] = {};
    const u32 *lane_line_start[kMax] = {};
    const layout::PageMap *lane_pages[kMax] = {};
    for (u32 l = 0; l < k; ++l) {
        lane_line_phys[l] = tables.lane(l).linePhys.data();
        lane_line_start[l] = tables.lane(l).siteLineStart.data();
        lane_pages[l] = &tables.lane(l).pages();
    }

    const u32 line_bytes = cfg_.hierarchy.l1i.lineBytes;
    const u64 line_mask = ~static_cast<u64>(line_bytes - 1);

    // Layout-invariant event-stream state: computed once per event and
    // shared by every lane (the trace, and with it the instruction and
    // conditional-branch streams, does not depend on the layout).
    u64 instructions = 0;
    Count cond_branches = 0;
    u32 slot_carry = 0;
    size_t mem_cursor = 0;

    // Hot per-lane scalars as dense parallel arrays: all K copies of
    // one scalar share a cache line (see ReplayLane's comment).
    Cycle cycles[kMax] = {};
    Addr last_fetch_line[kMax];
    u64 cluster_start_inst[kMax] = {};
    u32 cluster_outstanding[kMax] = {};
    u32 last_load_latency[kMax] = {};
    Count mispredicts[kMax] = {};
    Count btb_misses[kMax] = {};
    Count ras_mispredicts[kMax] = {};
    for (u32 l = 0; l < k; ++l)
        last_fetch_line[l] = ~Addr{0};

    const Addr *site_addr = tables.siteAddr.data();
    const Addr *branch_addr = tables.branchAddr.data();
    const Addr *uni_addr = tables.uniAddr.data();
    const u32 *mem_rank = plan.memRank.data();
    const u32 *ev_site = plan.site.data();
    const u32 *ev_bytes = plan.bytes.data();
    const u16 *ev_insts = plan.nInsts.data();
    const u8 *ev_extra = plan.extraExecCycles.data();
    const u16 *ev_nmem = plan.nMem.data();
    const u8 *ev_flags = plan.flags.data();
    const u32 *ev_target = plan.targetSite.data();
    const u32 *ev_ras_push = plan.rasPushSite.data();
    const u32 *ev_return = plan.returnSite.data();
    const u8 *mem_is_store = plan.memIsStore.data();

    const u32 lat_by_level[3] = {cfg_.l1Latency, cfg_.l2Latency,
                                 cfg_.memLatency};
    auto stall = [](u32 lat) -> Cycle { return lat > 4 ? lat - 4 : 0; };
    const Cycle fetch_stall_by_level[3] = {
        0, stall(cfg_.l2Latency), stall(cfg_.memLatency)};

    const u32 width = cfg_.width;
    const bool width_pow2 = (width & (width - 1)) == 0;
    const u32 width_shift =
        static_cast<u32>(std::countr_zero(width ? width : 1u));

    const size_t n = plan.eventCount();
    const size_t warmup_events = static_cast<size_t>(
        static_cast<double>(n) * cfg_.warmupFraction);

    // lint:hot-begin batched replay event loop (tools/lint_hotpath.py)
    auto run_events = [&](size_t lo, size_t hi) {
    for (size_t ev_idx = lo; ev_idx < hi; ++ev_idx) {
        // ---- Decode once; every lane replays this record.
        const u32 s = ev_site[ev_idx];
        const Addr *site_row = site_addr + static_cast<size_t>(s) * k;
        const u32 block_bytes = ev_bytes[ev_idx];
        const u8 f = ev_flags[ev_idx];

        // ---- Front end, per lane: line membership and counts depend
        // on where each layout placed the block. Way memos are keyed
        // (site, first-or-later line): a block's lines for one lane
        // are the same every time it executes, so two slots per site
        // cover the overwhelmingly common 1-2 line blocks (longer
        // blocks share the second slot, which only costs rescans).
        for (u32 l = 0; l < k; ++l) {
            const Addr addr = site_row[l];
            Addr first_line = addr & line_mask;
            Addr last_line = (addr + block_bytes - 1) & line_mask;
            u32 li = UseLineTable ? lane_line_start[l][s] : 0;
            u32 slot = static_cast<u32>(s) * 2;
            for (Addr line = first_line; line <= last_line;
                 line += line_bytes, ++li, slot = s * 2 + 1) {
                if (line == last_fetch_line[l])
                    continue; // same fetch group continuing
                last_fetch_line[l] = line;
                Addr paddr =
                    IdentityPages
                        ? line
                        : (UseLineTable ? lane_line_phys[l][li]
                                        : lane_pages[l]->translate(line));
                cache::HitLevel level = lanes[l]->hierarchy.fetchInstHinted(
                    paddr, fetch_memo[l][slot], pref_memo[l][slot]);
                cycles[l] += fetch_stall_by_level[static_cast<u32>(level)];
            }
        }

        // ---- Issue/retire: layout-invariant, computed once.
        slot_carry += ev_insts[ev_idx];
        Cycle issue_cycles;
        if (width_pow2) {
            issue_cycles = slot_carry >> width_shift;
            slot_carry &= width - 1;
        } else {
            issue_cycles = slot_carry / width;
            slot_carry %= width;
        }
        issue_cycles += ev_extra[ev_idx];
        instructions += ev_insts[ev_idx];
        for (u32 l = 0; l < k; ++l)
            cycles[l] += issue_cycles;

        // ---- Data accesses: the K addresses of reference m sit in
        // one contiguous row of the universe-indexed table, reached
        // through the shared rank stream. Probe all lanes first — the
        // memo-verifying tag loads (and any fallback packed scans) are
        // independent, so their set-row loads overlap — then commit
        // per lane (stats, install, latency, clustering).
        const u32 n_mem = ev_nmem[ev_idx];
        if (n_mem != 0 || (f & ReplayPlan::kDependsOnLoad))
            for (u32 l = 0; l < k; ++l)
                last_load_latency[l] = 0;
        for (u32 m = 0; m < n_mem; ++m, ++mem_cursor) {
            const u32 u = mem_rank[mem_cursor];
            const Addr *data_row =
                uni_addr + static_cast<size_t>(u) * k;
            const bool is_store = mem_is_store[mem_cursor] != 0;
            u32 ways[kMax];
            for (u32 l = 0; l < k; ++l)
                ways[l] = lanes[l]->hierarchy.probeDataWayHinted(
                    data_row[l], data_memo[l][u]);
            for (u32 l = 0; l < k; ++l) {
                cache::HitLevel level =
                    lanes[l]->hierarchy.accessDataCommit(
                        data_row[l], ways[l], data_memo[l][u]);
                u32 lat = lat_by_level[static_cast<u32>(level)];
                last_load_latency[l] =
                    is_store ? last_load_latency[l] : lat;
                if (level != cache::HitLevel::L1) {
                    bool overlaps =
                        instructions - cluster_start_inst[l] <=
                            cfg_.robSize &&
                        cluster_outstanding[l] > 0 &&
                        cluster_outstanding[l] < cfg_.maxMlp;
                    if (overlaps) {
                        ++cluster_outstanding[l];
                    } else {
                        cycles[l] += lat;
                        cluster_start_inst[l] = instructions;
                        cluster_outstanding[l] = 1;
                    }
                }
            }
        }

        // ---- Branch.
        if (!(f & ReplayPlan::kHasBranch))
            continue;
        const Addr *branch_row =
            branch_addr + static_cast<size_t>(s) * k;
        const bool taken = (f & ReplayPlan::kTaken) != 0;
        bool lane_mispredicted[kMax] = {};

        if (f & ReplayPlan::kCond) {
            ++cond_branches;
            for (u32 l = 0; l < k; ++l) {
                bool pred = lanes[l]->predictAndTrain(branch_row[l], taken);
                if (pred != taken) {
                    ++mispredicts[l];
                    lane_mispredicted[l] = true;
                    u32 resolve = (f & ReplayPlan::kDependsOnLoad) &&
                                          last_load_latency[l] > 0
                                      ? last_load_latency[l]
                                      : static_cast<u32>(ev_extra[ev_idx]) +
                                            1;
                    cycles[l] += cfg_.frontendDepth + resolve;
                }
            }
        }

        // ---- Returns through each lane's return-address stack.
        if (f & ReplayPlan::kReturn) {
            const u32 ret = ev_return[ev_idx];
            const Addr *ret_row =
                ret != ReplayPlan::kNoSite
                    ? site_addr + static_cast<size_t>(ret) * k
                    : nullptr;
            for (u32 l = 0; l < k; ++l) {
                Addr predicted = lanes[l]->ras.pop();
                Addr actual = ret_row ? ret_row[l] : 0;
                if (actual != 0 && predicted != actual) {
                    ++ras_mispredicts[l];
                    cycles[l] += cfg_.frontendDepth;
                }
                last_fetch_line[l] = ~Addr{0};
            }
            continue;
        }

        // ---- Target prediction (BTB) for taken redirects: probe all
        // lanes' scans back-to-back, then commit per lane. The BTB
        // stores the plan's site index as the target token (site ids
        // are shared across lanes; block addresses are injective per
        // layout, so token equality is address equality — see
        // replayImpl).
        if (taken) {
            const u32 target_site = ev_target[ev_idx];
            const u32 push = ev_ras_push[ev_idx];
            const Addr *push_row =
                (f & ReplayPlan::kCall) && push != ReplayPlan::kNoSite
                    ? site_addr + static_cast<size_t>(push) * k
                    : nullptr;
            u32 btb_ways[kMax];
            for (u32 l = 0; l < k; ++l)
                btb_ways[l] = lanes[l]->btb.probeWayHinted(
                    branch_row[l], btb_memo[l][s]);
            for (u32 l = 0; l < k; ++l) {
                if (push_row)
                    lanes[l]->ras.push(push_row[l]);
                u32 way_now;
                bpred::BtbResult hit = lanes[l]->btb.updateFoundAt(
                    branch_row[l], target_site, btb_ways[l], way_now);
                btb_memo[l][s] = static_cast<u8>(way_now);
                bool target_ok = hit.hit && hit.target == target_site;
                if (!target_ok) {
                    ++btb_misses[l];
                    if (!lane_mispredicted[l]) {
                        if ((f & ReplayPlan::kIndirect) && hit.hit) {
                            cycles[l] += cfg_.frontendDepth;
                        } else {
                            cycles[l] += cfg_.misfetchPenalty;
                        }
                    }
                }
                last_fetch_line[l] = ~Addr{0};
            }
        }
    }
    };
    // lint:hot-end

    if (warmup_events < n) {
        run_events(0, warmup_events);
        // End of warmup: forget everything measured so far, keep every
        // lane's microarchitectural state (mirrors replayImpl).
        instructions = 0;
        cond_branches = 0;
        slot_carry = 0;
        for (u32 l = 0; l < k; ++l) {
            cycles[l] = 0;
            cluster_start_inst[l] = 0;
            cluster_outstanding[l] = 0;
            mispredicts[l] = 0;
            btb_misses[l] = 0;
            ras_mispredicts[l] = 0;
            lanes[l]->hierarchy.clearStats();
        }
        run_events(warmup_events, n);
    } else {
        run_events(0, n);
    }

    INTERF_ASSERT(mem_cursor == plan.memCount());

    std::vector<RunResult> out(k);
    for (u32 l = 0; l < k; ++l) {
        RunResult &r = out[l];
        auto hs = lanes[l]->hierarchy.stats();
        r.cycles = cycles[l];
        r.instructions = instructions;
        r.condBranches = cond_branches;
        r.mispredicts = mispredicts[l];
        r.l1iMisses = hs.l1i.misses;
        r.l1dMisses = hs.l1d.misses;
        r.l2Misses = hs.l2.misses;
        r.l2InstMisses = hs.l2InstMisses;
        r.l2PrefMisses = hs.l2PrefMisses;
        r.l2DataMisses = hs.l2DataMisses;
        r.btbMisses = btb_misses[l];
        r.rasMispredicts = ras_mispredicts[l];
    }
    return out;
}

} // namespace interf::core
