#include "core/timing.hh"

#include <algorithm>

#include "bpred/factory.hh"
#include "util/logging.hh"

namespace interf::core
{

double
RunResult::cpi() const
{
    INTERF_ASSERT(instructions > 0);
    return static_cast<double>(cycles) / static_cast<double>(instructions);
}

double
RunResult::mpki() const
{
    return perKilo(mispredicts);
}

double
RunResult::perKilo(Count events) const
{
    INTERF_ASSERT(instructions > 0);
    return 1000.0 * static_cast<double>(events) /
           static_cast<double>(instructions);
}

Machine::Machine(const MachineConfig &config)
    : cfg_(config),
      hierarchy_(config.hierarchy),
      predictor_(bpred::makePredictor(config.predictorSpec)),
      btb_(config.btbSets, config.btbWays),
      ras_(config.rasDepth)
{
    cfg_.validate();
}

void
Machine::resetState()
{
    hierarchy_.reset();
    predictor_->reset();
    btb_.reset();
    ras_.reset();
}

RunResult
Machine::run(const trace::Program &prog, const trace::Trace &trace,
             const layout::CodeLayout &code, const layout::HeapLayout &heap)
{
    return run(prog, trace, code, heap, layout::PageMap());
}

RunResult
Machine::run(const trace::Program &prog, const trace::Trace &trace,
             const layout::CodeLayout &code, const layout::HeapLayout &heap,
             const layout::PageMap &pages)
{
    resetState();
    RunResult res;

    const u32 line_bytes = cfg_.hierarchy.l1i.lineBytes;
    const u64 line_mask = ~static_cast<u64>(line_bytes - 1);

    Cycle cycles = 0;
    u32 slot_carry = 0;          ///< Partial-width issue remainder.
    Addr last_fetch_line = ~Addr{0};

    // Data-miss overlap state: misses within robSize retired
    // instructions of the cluster leader share its latency (up to
    // maxMlp outstanding).
    u64 cluster_start_inst = 0;
    u32 cluster_outstanding = 0;

    size_t mem_cursor = 0;

    auto mem_latency = [&](cache::HitLevel level) -> u32 {
        switch (level) {
          case cache::HitLevel::L1:
            return cfg_.l1Latency;
          case cache::HitLevel::L2:
            return cfg_.l2Latency;
          case cache::HitLevel::Memory:
            return cfg_.memLatency;
        }
        panic("bad HitLevel");
    };

    // Warmup: execute the first part of the trace normally but start
    // the counters afterwards (see MachineConfig::warmupFraction).
    const size_t warmup_events = static_cast<size_t>(
        static_cast<double>(trace.events.size()) * cfg_.warmupFraction);

    for (size_t ev_idx = 0; ev_idx < trace.events.size(); ++ev_idx) {
        if (ev_idx == warmup_events) {
            res = RunResult();
            cycles = 0;
            slot_carry = 0;
            cluster_start_inst = 0;
            cluster_outstanding = 0;
            hierarchy_.clearStats();
        }
        const auto &ev = trace.events[ev_idx];
        const trace::BasicBlock &bb = prog.block(ev.proc, ev.block);
        Addr addr = code.blockAddr(ev.proc, ev.block);

        // ---- Front end: fetch the lines this block occupies.
        Addr first_line = addr & line_mask;
        Addr last_line = (addr + bb.bytes - 1) & line_mask;
        for (Addr line = first_line; line <= last_line;
             line += line_bytes) {
            if (line == last_fetch_line)
                continue; // same fetch group continuing
            last_fetch_line = line;
            cache::HitLevel level =
                hierarchy_.fetchInst(pages.translate(line));
            if (level != cache::HitLevel::L1) {
                // Demand I-miss stalls fetch; the decode queue hides a
                // few cycles of it.
                u32 lat = mem_latency(level);
                cycles += lat > 4 ? lat - 4 : 0;
            }
        }

        // ---- Issue/retire: width-limited plus intrinsic dependence
        // stalls.
        slot_carry += bb.nInsts;
        cycles += slot_carry / cfg_.width;
        slot_carry %= cfg_.width;
        cycles += bb.extraExecCycles;
        res.instructions += bb.nInsts;

        // ---- Data accesses.
        u32 last_load_latency = 0; ///< Resolution time of the newest load.
        for (const auto &ref : bb.memRefs) {
            Addr daddr = heap.dataAddr(trace.memIds[mem_cursor++]);
            cache::HitLevel level =
                hierarchy_.accessData(pages.translate(daddr));
            u32 lat = mem_latency(level);
            if (!ref.isStore)
                last_load_latency = lat;
            if (level == cache::HitLevel::L1)
                continue; // L1 hits are hidden by the OoO window
            // Miss clustering: misses within the ROB reach of the
            // cluster leader (and below the MLP limit) ride the same
            // stall; the leader pays full latency.
            bool overlaps =
                res.instructions - cluster_start_inst <= cfg_.robSize &&
                cluster_outstanding > 0 &&
                cluster_outstanding < cfg_.maxMlp;
            if (overlaps) {
                ++cluster_outstanding;
            } else {
                cycles += lat;
                cluster_start_inst = res.instructions;
                cluster_outstanding = 1;
            }
        }

        // ---- Branch.
        const trace::StaticBranch &br = bb.branch;
        if (!br.exists())
            continue;
        Addr branch_pc = code.branchAddr(ev.proc, ev.block);
        bool mispredicted = false;

        if (br.isConditional()) {
            ++res.condBranches;
            bool taken = ev.taken != 0;
            bool pred = predictor_->predictAndTrain(branch_pc, taken);
            if (pred != taken) {
                ++res.mispredicts;
                mispredicted = true;
                // Penalty: front-end refill plus the branch's
                // resolution time. A branch waiting on a missing load
                // resolves only when the load returns.
                u32 resolve = br.dependsOnLoad && last_load_latency > 0
                                  ? last_load_latency
                                  : bb.extraExecCycles + 1;
                cycles += cfg_.frontendDepth + resolve;
            }
        }

        // ---- Returns: predicted through the finite return-address
        // stack; a pop that disagrees with the actual fall-back target
        // (stack overflow on deep chains) costs a full redirect.
        if (br.kind == trace::OpClass::Return) {
            Addr predicted = ras_.pop();
            Addr actual = 0;
            if (ev_idx + 1 < trace.events.size()) {
                const auto &next = trace.events[ev_idx + 1];
                actual = code.blockAddr(next.proc, next.block);
            }
            if (actual != 0 && predicted != actual) {
                ++res.rasMispredicts;
                cycles += cfg_.frontendDepth;
            }
            last_fetch_line = ~Addr{0};
            continue;
        }

        // ---- Target prediction (BTB) for taken redirects.
        if (ev.taken && br.kind != trace::OpClass::Return) {
            Addr target;
            switch (br.kind) {
              case trace::OpClass::Call: {
                target = code.procBase(br.targetProc);
                // Push the fall-through (return) address.
                u32 next_block = static_cast<u32>(ev.block) + 1;
                if (next_block < prog.proc(ev.proc).blocks.size())
                    ras_.push(code.blockAddr(ev.proc, next_block));
                break;
              }
              case trace::OpClass::IndirectBranch:
                target = code.blockAddr(
                    br.targetProc,
                    static_cast<u32>(br.targetBlock) + ev.indirectChoice);
                break;
              default:
                target = code.blockAddr(br.targetProc, br.targetBlock);
            }
            bpred::BtbResult hit = btb_.lookup(branch_pc);
            bool target_ok = hit.hit && hit.target == target;
            if (!target_ok) {
                ++res.btbMisses;
                // A direction mispredict already paid the full redirect;
                // otherwise a taken branch with no (or a wrong) target
                // costs a misfetch, and a wrong *indirect* target costs
                // a full pipeline refill.
                if (!mispredicted) {
                    if (br.kind == trace::OpClass::IndirectBranch &&
                        hit.hit) {
                        cycles += cfg_.frontendDepth;
                    } else {
                        cycles += cfg_.misfetchPenalty;
                    }
                }
            }
            btb_.update(branch_pc, target);
            // Any taken branch breaks the sequential fetch run.
            last_fetch_line = ~Addr{0};
        }
    }

    INTERF_ASSERT(mem_cursor == trace.memIds.size());

    auto hs = hierarchy_.stats();
    res.l1iMisses = hs.l1i.misses;
    res.l1dMisses = hs.l1d.misses;
    res.l2Misses = hs.l2.misses;
    res.l2InstMisses = hs.l2InstMisses;
    res.l2PrefMisses = hs.l2PrefMisses;
    res.l2DataMisses = hs.l2DataMisses;
    res.cycles = cycles;
    return res;
}

} // namespace interf::core
