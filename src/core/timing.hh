/**
 * @file
 * The machine timing model: our stand-in for the real Xeon E5440.
 *
 * The paper never simulates its machine — it *measures* it. We have no
 * hardware, so this model plays the hardware's role: a deterministic,
 * interval-analysis-style out-of-order core whose cycle count emerges
 * from the interaction of the layout-sensitive structures:
 *
 *  - the front end fetches through the L1I (code layout decides which
 *    lines conflict) and redirects through the BTB;
 *  - the conditional branch predictor (the reverse-engineered hybrid)
 *    is indexed with *physical branch addresses*, so layouts alias
 *    different branch sites in its tables;
 *  - mispredicted branches pay the front-end refill plus their
 *    *resolution* time — a branch depending on an L2-missing load pays
 *    hundreds of cycles, which is how some benchmarks end up with
 *    Table-1 slopes far above the pipeline depth;
 *  - data misses overlap up to a configurable MLP within the ROB reach,
 *    so memory CPI is not simply misses x latency.
 *
 * Crucially, nothing here hard-codes CPI = a + b*MPKI: linearity (and
 * its imperfections, Section 3) is an emergent, measured property.
 */

#ifndef INTERF_CORE_TIMING_HH
#define INTERF_CORE_TIMING_HH

#include "bpred/btb.hh"
#include "bpred/ras.hh"
#include "bpred/predictor.hh"
#include "cache/hierarchy.hh"
#include "core/config.hh"
#include "layout/heap.hh"
#include "layout/pagemap.hh"
#include "layout/linker.hh"
#include "pmu/pmu.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"

namespace interf::core
{

/** Deterministic outcome of one timing run (pre-noise). */
struct RunResult
{
    Cycle cycles = 0;
    Count instructions = 0;
    Count condBranches = 0;
    Count mispredicts = 0; ///< Conditional direction mispredictions.
    Count l1iMisses = 0;
    Count l1dMisses = 0;
    Count l2Misses = 0;
    Count l2InstMisses = 0; ///< L2-miss breakdown: demand fetch.
    Count l2PrefMisses = 0; ///< L2-miss breakdown: I-prefetch.
    Count l2DataMisses = 0; ///< L2-miss breakdown: loads/stores.
    Count btbMisses = 0; ///< Taken-branch target misses (incl. indirect).
    Count rasMispredicts = 0; ///< Return-address-stack mispredictions.

    double cpi() const;
    double mpki() const;
    double perKilo(Count events) const;
};

/**
 * The machine. Owns its microarchitectural state (caches, predictor,
 * BTB); run() executes one trace under one layout from power-on state
 * and returns the deterministic counters.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    /**
     * Execute a trace under a code + data layout.
     *
     * A thin adapter over replay(): compiles the trace into a one-off
     * ReplayPlan and LayoutTables, then runs the dense kernel.
     * Callers replaying the same trace many times (campaigns, sweeps)
     * should build the plan once and call replay() directly.
     *
     * @param prog Static program (block geometry).
     * @param trace Dynamic trace (layout-invariant semantics).
     * @param code Address assignment for code.
     * @param heap Address assignment for data.
     */
    RunResult run(const trace::Program &prog, const trace::Trace &trace,
                  const layout::CodeLayout &code,
                  const layout::HeapLayout &heap);

    /**
     * As above, with an explicit virtual-to-physical page mapping used
     * for L2 indexing (see layout/pagemap.hh). The four-argument
     * overload uses the identity mapping.
     */
    RunResult run(const trace::Program &prog, const trace::Trace &trace,
                  const layout::CodeLayout &code,
                  const layout::HeapLayout &heap,
                  const layout::PageMap &pages);

    /**
     * Replay a compiled plan under one layout's address tables: the
     * hot path of every campaign. Iterates the plan's flat arrays with
     * no Program or Trace access, with a specialized fast path when
     * the page mapping is the identity.
     *
     * Bit-identical to runReference() on the same (trace, layout) —
     * every counter and cycle count — which tests/test_replay.cc
     * enforces. The tables must carry data addresses (not code-only).
     */
    RunResult replay(const trace::ReplayPlan &plan,
                     const trace::LayoutTables &tables);

    /**
     * The event-at-a-time reference implementation: walks Program and
     * Trace directly, one block event at a time. This is the
     * executable specification the replay kernel is tested against
     * (and the pre-plan measurement path benchmarked as "legacy" in
     * bench_micro_replay); not for hot loops.
     */
    RunResult runReference(const trace::Program &prog,
                           const trace::Trace &trace,
                           const layout::CodeLayout &code,
                           const layout::HeapLayout &heap,
                           const layout::PageMap &pages);

    const MachineConfig &config() const { return cfg_; }

  private:
    void resetState();

    template <bool IdentityPages, bool UseLineTable>
    RunResult replayImpl(const trace::ReplayPlan &plan,
                         const trace::LayoutTables &tables);

    MachineConfig cfg_;
    cache::MemoryHierarchy hierarchy_;
    bpred::PredictorPtr predictor_;
    bpred::Btb btb_;
    bpred::ReturnAddressStack ras_;
};

} // namespace interf::core

#endif // INTERF_CORE_TIMING_HH
