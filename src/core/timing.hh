/**
 * @file
 * The machine timing model: our stand-in for the real Xeon E5440.
 *
 * The paper never simulates its machine — it *measures* it. We have no
 * hardware, so this model plays the hardware's role: a deterministic,
 * interval-analysis-style out-of-order core whose cycle count emerges
 * from the interaction of the layout-sensitive structures:
 *
 *  - the front end fetches through the L1I (code layout decides which
 *    lines conflict) and redirects through the BTB;
 *  - the conditional branch predictor (the reverse-engineered hybrid)
 *    is indexed with *physical branch addresses*, so layouts alias
 *    different branch sites in its tables;
 *  - mispredicted branches pay the front-end refill plus their
 *    *resolution* time — a branch depending on an L2-missing load pays
 *    hundreds of cycles, which is how some benchmarks end up with
 *    Table-1 slopes far above the pipeline depth;
 *  - data misses overlap up to a configurable MLP within the ROB reach,
 *    so memory CPI is not simply misses x latency.
 *
 * Crucially, nothing here hard-codes CPI = a + b*MPKI: linearity (and
 * its imperfections, Section 3) is an emergent, measured property.
 */

#ifndef INTERF_CORE_TIMING_HH
#define INTERF_CORE_TIMING_HH

#include <memory>

#include "bpred/btb.hh"
#include "bpred/ras.hh"
#include "bpred/predictor.hh"
#include "cache/hierarchy.hh"
#include "core/config.hh"
#include "layout/heap.hh"
#include "layout/pagemap.hh"
#include "layout/linker.hh"
#include "pmu/pmu.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"

namespace interf::core
{

/** One lane's machine state for replayBatch (defined in timing.cc). */
struct BatchLaneState;

/** Aggregated way-memo verification outcomes (Cache/Btb hinted
 *  probes), cumulative over a Machine's lifetime. */
struct MemoHintStats
{
    u64 probes = 0;   ///< Hinted probes issued.
    u64 verified = 0; ///< Answered by the one-load hint verification.

    /** Fraction of hinted probes the memo answered (0 when none ran). */
    double rate() const
    {
        return probes ? static_cast<double>(verified) /
                            static_cast<double>(probes)
                      : 0.0;
    }
};

/** Deterministic outcome of one timing run (pre-noise). */
struct RunResult
{
    Cycle cycles = 0;
    Count instructions = 0;
    Count condBranches = 0;
    Count mispredicts = 0; ///< Conditional direction mispredictions.
    Count l1iMisses = 0;
    Count l1dMisses = 0;
    Count l2Misses = 0;
    Count l2InstMisses = 0; ///< L2-miss breakdown: demand fetch.
    Count l2PrefMisses = 0; ///< L2-miss breakdown: I-prefetch.
    Count l2DataMisses = 0; ///< L2-miss breakdown: loads/stores.
    Count btbMisses = 0; ///< Taken-branch target misses (incl. indirect).
    Count rasMispredicts = 0; ///< Return-address-stack mispredictions.

    double cpi() const;
    double mpki() const;
    double perKilo(Count events) const;
};

/**
 * The machine. Owns its microarchitectural state (caches, predictor,
 * BTB); run() executes one trace under one layout from power-on state
 * and returns the deterministic counters.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);
    ~Machine(); // Out of line: the lane pool's type lives in timing.cc.

    /**
     * Execute a trace under a code + data layout.
     *
     * A thin adapter over replay(): compiles the trace into a one-off
     * ReplayPlan and LayoutTables, then runs the dense kernel.
     * Callers replaying the same trace many times (campaigns, sweeps)
     * should build the plan once and call replay() directly.
     *
     * @param prog Static program (block geometry).
     * @param trace Dynamic trace (layout-invariant semantics).
     * @param code Address assignment for code.
     * @param heap Address assignment for data.
     */
    RunResult run(const trace::Program &prog, const trace::Trace &trace,
                  const layout::CodeLayout &code,
                  const layout::HeapLayout &heap);

    /**
     * As above, with an explicit virtual-to-physical page mapping used
     * for L2 indexing (see layout/pagemap.hh). The four-argument
     * overload uses the identity mapping.
     */
    RunResult run(const trace::Program &prog, const trace::Trace &trace,
                  const layout::CodeLayout &code,
                  const layout::HeapLayout &heap,
                  const layout::PageMap &pages);

    /**
     * Replay a compiled plan under one layout's address tables: the
     * hot path of every campaign. Iterates the plan's flat arrays with
     * no Program or Trace access, with a specialized fast path when
     * the page mapping is the identity.
     *
     * Bit-identical to runReference() on the same (trace, layout) —
     * every counter and cycle count — which tests/test_replay.cc
     * enforces. The tables must carry data addresses (not code-only).
     */
    RunResult replay(const trace::ReplayPlan &plan,
                     const trace::LayoutTables &tables);

    /**
     * Replay a compiled plan under K layouts in one pass over the
     * event stream: per event, the layout-invariant record (site,
     * geometry, flags, targets, memory counts) is decoded once and K
     * independent machine states — caches, BTB, predictor, RAS, PMU
     * counters — advance through it, reading their addresses from the
     * batched tables' lane-major arrays. Layout-invariant arithmetic
     * (issue slots, instruction and conditional-branch tallies) is
     * computed once and shared; tag scans of the K lanes issue
     * back-to-back so their row loads overlap (see cache::Cache::
     * accessFound). This multiplies layouts/sec for every consumer
     * that evaluates many layouts against one profile.
     *
     * Result i is bit-identical to replay(plan, tables.lane(i)) — and
     * therefore to runReference() — for every counter and cycle count,
     * at any lane count and any lane grouping; tests/test_replay.cc
     * proves it per lane against the reference model. Each lane runs
     * from power-on state; the Machine's own microarchitectural state
     * is neither read nor modified.
     */
    std::vector<RunResult>
    replayBatch(const trace::ReplayPlan &plan,
                const trace::BatchedLayoutTables &tables);

    /**
     * The event-at-a-time reference implementation: walks Program and
     * Trace directly, one block event at a time. This is the
     * executable specification the replay kernel is tested against
     * (and the pre-plan measurement path benchmarked as "legacy" in
     * bench_micro_replay); not for hot loops.
     */
    RunResult runReference(const trace::Program &prog,
                           const trace::Trace &trace,
                           const layout::CodeLayout &code,
                           const layout::HeapLayout &heap,
                           const layout::PageMap &pages);

    const MachineConfig &config() const { return cfg_; }

    /**
     * Microarchitectural hot-state bytes one replay lane keeps: the
     * hierarchy's tag/age/generation arrays, the predictor's counter
     * tables, the BTB, and the RAS ring — the state the compaction
     * work budgets (DESIGN.md §5j) and the K-sweep trades against the
     * host LLC. The bench reports it per row and replayBatch exports
     * it as the `replay.lane_state_bytes` gauge. Plan-sized way memos
     * are accounted separately by laneMemoBytes(): they scale with
     * the workload's site/universe counts, not the modeled machine.
     */
    u64 laneStateBytes() const;

    /** Bytes of per-lane way-memo hints (one byte per hint) a batched
     *  lane adds on top of laneStateBytes() when replaying @p plan;
     *  exported as the `replay.lane_memo_bytes` gauge. */
    static u64 laneMemoBytes(const trace::ReplayPlan &plan);

    /** Cumulative hinted-probe outcomes across the lane pool (L1I,
     *  L1D and BTB way memos) plus the Machine's own structures. */
    MemoHintStats memoHintStats() const;

    /** Enable/disable hinted-probe outcome counting everywhere (the
     *  Machine's own structures, pooled lanes, and lanes created
     *  later). Off by default: the counters are diagnostics, and the
     *  bench samples verify_rate in an untimed pass rather than tax
     *  every timed round (see cache::HintStats). */
    void setHintCounting(bool on);

  private:
    void resetState();

    template <bool IdentityPages, bool UseLineTable>
    RunResult replayImpl(const trace::ReplayPlan &plan,
                         const trace::LayoutTables &tables);

    /** Picks the compile-time lane-count instantiation for the current
     *  batch width (1/2/4/8 unroll the per-event lane loops; other
     *  widths run the runtime-width body). */
    template <bool IdentityPages, bool UseLineTable>
    std::vector<RunResult>
    replayBatchDispatch(const trace::ReplayPlan &plan,
                        const trace::BatchedLayoutTables &tables);

    /** kLanes == 0 means "read the width from the tables at runtime". */
    template <u32 kLanes, bool IdentityPages, bool UseLineTable>
    std::vector<RunResult>
    replayBatchImpl(const trace::ReplayPlan &plan,
                    const trace::BatchedLayoutTables &tables);

    MachineConfig cfg_;
    cache::MemoryHierarchy hierarchy_;
    bpred::PredictorPtr predictor_;
    bpred::Btb btb_;
    bpred::ReturnAddressStack ras_;
    /**
     * Lane pool for replayBatch, grown lazily and reused across calls:
     * a lane's hierarchy alone is megabytes of tag state, and
     * reallocating (and page-faulting) it per batch cost more than the
     * batched kernel saved. Lanes are reset to power-on state at the
     * start of every batch, so reuse is invisible to results.
     */
    std::vector<std::unique_ptr<BatchLaneState>> lanePool_;
    bool countHints_ = false; ///< setHintCounting() state for new lanes.
};

} // namespace interf::core

#endif // INTERF_CORE_TIMING_HH
