/**
 * @file
 * The measurement protocol: perfex-style counter collection.
 *
 * Section 5.5 of the paper: the Xeon counts two programmable events at
 * a time, so three groups of two are measured in separate runs; "For
 * each set we run each benchmark five times and take the measurements
 * given by the run with the median number of cycles."
 *
 * MeasurementRunner performs exactly that protocol against the timing
 * model + noise model: per layout, for each of the three event groups,
 * five noisy runs are taken and the median-cycle run's counters kept.
 * CPI comes from the branch group's run (any group would do); per-kilo
 * event rates use each group's own instruction count, just like
 * dividing raw perfex counters.
 *
 * Because the timing model is deterministic for a fixed layout, the
 * fifteen physical runs differ only in noise; the runner therefore
 * executes timing once and synthesizes the noisy repetitions, which is
 * behaviourally identical and an order of magnitude faster.
 */

#ifndef INTERF_CORE_RUNNER_HH
#define INTERF_CORE_RUNNER_HH

#include <vector>

#include "core/noise.hh"
#include "core/timing.hh"

namespace interf::core
{

/** One layout's final measured sample (after median-of-five). */
struct Measurement
{
    u64 layoutSeed = 0;

    double cpi = 0.0;
    double mpki = 0.0;    ///< Mispredicted branches / kilo-instruction.
    double l1iMpki = 0.0; ///< L1I misses / kilo-instruction.
    double l1dMpki = 0.0;
    double l2Mpki = 0.0;
    double btbMpki = 0.0;

    /** @{ Raw counters from the groups' median runs. */
    Cycle cycles = 0;
    Count instructions = 0;
    Count condBranches = 0;
    Count mispredicts = 0;
    Count l1iMisses = 0;
    Count l1dMisses = 0;
    Count l2Misses = 0;
    Count btbMisses = 0;
    /** @} */
};

/** Protocol parameters. */
struct RunnerConfig
{
    u32 runsPerGroup = 5; ///< The paper's five repetitions.
    NoiseConfig noise;
};

/** A measurement paired with its deterministic (noise-free) truth. */
struct MeasuredRun
{
    Measurement sample; ///< What the counter protocol reports.
    RunResult truth;    ///< What the machine actually did (pre-noise).
};

/**
 * Executes the three-group, median-of-five measurement protocol.
 *
 * A runner keeps no per-measurement state — everything a call produces
 * is in its return value — but it owns a mutable Machine, so one runner
 * must not be shared across threads. Parallel campaigns give each
 * worker its own runner (see interferometry::Campaign).
 */
class MeasurementRunner
{
  public:
    MeasurementRunner(const MachineConfig &machine,
                      const RunnerConfig &runner);

    /**
     * Measure one (trace, layout) configuration.
     *
     * @param noise_seed Seed for this layout's measurement noise; pass
     *        the layout seed so campaigns are reproducible end to end.
     */
    Measurement measure(const trace::Program &prog,
                        const trace::Trace &trace,
                        const layout::CodeLayout &code,
                        const layout::HeapLayout &heap, u64 noise_seed);

    /** As above with an explicit page mapping for physical L2
     *  indexing. */
    Measurement measure(const trace::Program &prog,
                        const trace::Trace &trace,
                        const layout::CodeLayout &code,
                        const layout::HeapLayout &heap,
                        const layout::PageMap &pages, u64 noise_seed);

    /** @{ As measure(), also returning the noise-free ground truth. */
    MeasuredRun measureWithTruth(const trace::Program &prog,
                                 const trace::Trace &trace,
                                 const layout::CodeLayout &code,
                                 const layout::HeapLayout &heap,
                                 u64 noise_seed);

    MeasuredRun measureWithTruth(const trace::Program &prog,
                                 const trace::Trace &trace,
                                 const layout::CodeLayout &code,
                                 const layout::HeapLayout &heap,
                                 const layout::PageMap &pages,
                                 u64 noise_seed);
    /** @} */

    /**
     * @{ Plan-based measurement: the campaign hot path. Replays a
     * compiled ReplayPlan under one layout's address tables instead of
     * walking Program + Trace; identical protocol, identical results
     * (the replay kernel is bit-identical to the reference loop).
     */
    Measurement measure(const trace::ReplayPlan &plan,
                        const trace::LayoutTables &tables, u64 noise_seed);

    MeasuredRun measureWithTruth(const trace::ReplayPlan &plan,
                                 const trace::LayoutTables &tables,
                                 u64 noise_seed);
    /** @} */

    /**
     * @{ Batched measurement: K layouts through one pass over the
     * plan's event stream (Machine::replayBatch), then the standard
     * protocol per lane with that lane's own noise seed. Element i is
     * bit-identical to measure(plan, tables.lane(i), noise_seeds[i]) —
     * the protocol consumes only the lane's truth counters and seed,
     * both unchanged by batching — so campaigns may group lanes
     * freely without perturbing any sample.
     *
     * @param noise_seeds One seed per lane (size == tables.lanes()).
     */
    std::vector<Measurement> measureBatch(const trace::ReplayPlan &plan,
                                          const trace::BatchedLayoutTables &tables,
                                          const std::vector<u64> &noise_seeds);

    std::vector<MeasuredRun>
    measureBatchWithTruth(const trace::ReplayPlan &plan,
                          const trace::BatchedLayoutTables &tables,
                          const std::vector<u64> &noise_seeds);
    /** @} */

  private:
    /** The three-group median-of-five protocol over one truth run. */
    MeasuredRun protocol(RunResult truth, u64 noise_seed);

    Machine machine_;
    RunnerConfig cfg_;
};

} // namespace interf::core

#endif // INTERF_CORE_RUNNER_HH
