/**
 * @file
 * Reference microarchitecture models for Machine::runReference().
 *
 * These are the original event-at-a-time implementations of the cache,
 * hierarchy and BTB (array-of-line-structs storage, out-of-line
 * methods), kept verbatim as the executable specification after the
 * hot-path versions in cache/ and bpred/ moved to inlined SoA storage
 * with branchless tag scans. Keeping them separate serves two roles:
 *
 *  - tests/test_replay.cc checks the replay kernel against
 *    runReference(), so the optimized structures are verified
 *    bit-for-bit against these independent, obviously-correct models
 *    rather than against themselves;
 *  - bench_micro_replay's "legacy" mode measures the pre-plan
 *    measurement path with the storage layout it actually had, giving
 *    an honest baseline for the replay speedup.
 *
 * Nothing here is for hot loops; do not optimize these.
 */

#ifndef INTERF_CORE_REFMODEL_HH
#define INTERF_CORE_REFMODEL_HH

#include <vector>

#include "bpred/btb.hh"
#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace interf::core::refmodel
{

/** Reference set-associative tag-only cache (line structs, LRU). */
class RefCache
{
  public:
    explicit RefCache(const cache::CacheConfig &config);

    /** Access one line: true on hit; installs on miss. */
    bool access(Addr addr);

    /** Probe without updating replacement state or installing. */
    bool contains(Addr addr) const;

    /** Install without touching the hit/miss statistics. */
    void install(Addr addr);

    /** Clear statistics only, keeping contents (warmup end). */
    void clearStats() { stats_ = cache::CacheStats(); }

    const cache::CacheStats &stats() const { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        u32 lru = 0;
    };

    u32 setIndex(Addr addr) const
    {
        return static_cast<u32>(addr >> lineShift_) & (sets_ - 1);
    }
    Addr tagOf(Addr addr) const { return addr >> lineShift_; }
    u32 pickVictim(const Line *row);

    cache::CacheConfig cfg_;
    u32 sets_;
    u32 lineShift_;
    u32 lruClock_ = 0;
    Rng victimRng_{0x5eed};
    std::vector<Line> lines_; ///< sets_ * assoc, row-major by set.
    cache::CacheStats stats_;
};

/** Reference L1I/L1D/L2 hierarchy with next-line I-prefetch. */
class RefHierarchy
{
  public:
    explicit RefHierarchy(const cache::HierarchyConfig &config);

    cache::HitLevel fetchInst(Addr addr);
    cache::HitLevel accessData(Addr addr);
    void clearStats();
    cache::HierarchyStats stats() const;

  private:
    cache::HierarchyConfig cfg_;
    RefCache l1i_;
    RefCache l1d_;
    RefCache l2_;
    Addr lastFetchLine_ = ~Addr{0};
    Count l2InstMisses_ = 0;
    Count l2PrefMisses_ = 0;
    Count l2DataMisses_ = 0;
};

/** Result of a RefBtb lookup: full target address (the reference
 *  model stays address-tagged and address-valued; the optimized Btb
 *  stores u32 tokens instead, which the replay kernels prove
 *  equivalent through site-address injectivity). */
struct RefBtbResult
{
    bool hit = false;
    Addr target = 0;
};

/** Reference branch target buffer (entry structs, LRU). */
class RefBtb
{
  public:
    RefBtb(u32 sets, u32 ways);

    RefBtbResult lookup(Addr pc) const;
    void update(Addr pc, Addr target);

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        u32 lru = 0;
    };

    u32 setIndex(Addr pc) const
    {
        return static_cast<u32>(pc ^ (pc >> 13)) & (sets_ - 1);
    }
    static Addr tagOf(Addr pc) { return pc; }

    u32 sets_;
    u32 ways_;
    u32 lruClock_ = 0;
    std::vector<Entry> entries_; ///< sets_ * ways_, row-major by set.
};

} // namespace interf::core::refmodel

#endif // INTERF_CORE_REFMODEL_HH
