#include "core/config.hh"

#include "util/logging.hh"

namespace interf::core
{

MachineConfig
MachineConfig::xeonE5440()
{
    MachineConfig cfg;
    cfg.name = "xeon-e5440";
    cfg.hierarchy.l1i = {"L1I", 32 << 10, 8, 64};
    cfg.hierarchy.l1d = {"L1D", 32 << 10, 8, 64};
    // Each E5440 chip has 12 MB of L2 shared by four cores; a single
    // core competing with an idle neighbour effectively sees half.
    // Replacement is spelled out because the shorter brace-init hides
    // a trap: MemoryHierarchyConfig's own L2 default is Random, but a
    // 4-element init here silently falls back to CacheConfig's Lru
    // default. This model has run LRU since the seed — every recorded
    // golden margin (OptGolden) and experiment is tuned to it — so
    // LRU is kept, explicitly. (DESIGN.md's "L2 replacement: Random"
    // bullet described the hierarchy default, not this machine; see
    // DESIGN.md §5j.)
    cfg.hierarchy.l2 = {"L2", 6 << 20, 24, 64, cache::Replacement::Lru};
    cfg.predictorSpec = "xeon";
    cfg.validate();
    return cfg;
}

MachineConfig
MachineConfig::withPredictor(const std::string &spec) const
{
    MachineConfig cfg = *this;
    cfg.predictorSpec = spec;
    cfg.name = name + "+" + spec;
    return cfg;
}

void
MachineConfig::validate() const
{
    if (width == 0 || width > 16)
        fatal("machine '%s': width %u out of range", name.c_str(), width);
    if (frontendDepth == 0 || frontendDepth > 100)
        fatal("machine '%s': frontendDepth %u out of range", name.c_str(),
              frontendDepth);
    if (robSize < width)
        fatal("machine '%s': robSize %u smaller than width", name.c_str(),
              robSize);
    if (maxMlp == 0)
        fatal("machine '%s': maxMlp must be >= 1", name.c_str());
    if (l2Latency <= l1Latency || memLatency <= l2Latency)
        fatal("machine '%s': latencies must increase down the hierarchy",
              name.c_str());
    if (warmupFraction < 0.0 || warmupFraction >= 1.0)
        fatal("machine '%s': warmupFraction %g out of [0, 1)",
              name.c_str(), warmupFraction);
    if (btbSets == 0 || (btbSets & (btbSets - 1)) != 0 || btbWays == 0)
        fatal("machine '%s': bad BTB geometry", name.c_str());
    if (rasDepth == 0)
        fatal("machine '%s': rasDepth must be >= 1", name.c_str());
    hierarchy.l1i.validate();
    hierarchy.l1d.validate();
    hierarchy.l2.validate();
}

} // namespace interf::core
