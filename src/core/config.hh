/**
 * @file
 * Machine configuration: the modeled "real system".
 *
 * The paper measures two quad-core Intel Xeon E5440 processors (45 nm
 * Enhanced Core microarchitecture, 32 KB L1I + 32 KB L1D per core,
 * 12 MB L2 per chip shared by four cores, undocumented hybrid
 * GAs+bimodal branch predictor). MachineConfig::xeonE5440() captures
 * that machine as the timing model sees it; other configurations are
 * used for the MASE-style linearity sweep where only the predictor
 * varies.
 */

#ifndef INTERF_CORE_CONFIG_HH
#define INTERF_CORE_CONFIG_HH

#include <string>

#include "cache/hierarchy.hh"
#include "util/types.hh"

namespace interf::core
{

/** Full parameterization of the modeled machine. */
struct MachineConfig
{
    std::string name = "xeon-e5440";

    /** @{ Pipeline. */
    u32 width = 4;          ///< Sustainable retire width (uops/cycle).
    u32 frontendDepth = 16; ///< Fetch-to-execute refill after redirect.
    u32 robSize = 96;       ///< Reorder-buffer reach for miss overlap.
    /** @} */

    /** @{ Memory latencies (cycles) and parallelism. */
    u32 l1Latency = 3;
    u32 l2Latency = 15;
    u32 memLatency = 220;
    u32 maxMlp = 6; ///< Data misses that can overlap.
    /** @} */

    /** @{ Branch machinery. */
    std::string predictorSpec = "xeon";
    u32 btbSets = 1024;
    u32 btbWays = 4;
    u32 rasDepth = 16; ///< Return-address-stack entries.
    u32 misfetchPenalty = 6; ///< Taken-branch BTB miss (front-end only).
    /** @} */

    cache::HierarchyConfig hierarchy;

    /**
     * Fraction of each trace executed before counters start. The paper
     * measures multi-minute runs whose cold-start transients are
     * negligible; our traces are orders of magnitude shorter, so the
     * model warms caches and predictors on the first part of the trace
     * and measures the steady state, like a real whole-run measurement.
     */
    double warmupFraction = 0.25;

    /** The paper's measured machine. */
    static MachineConfig xeonE5440();

    /**
     * The same machine with a different branch predictor — the
     * single-variable change the MASE linearity study makes.
     */
    MachineConfig withPredictor(const std::string &spec) const;

    /** Sanity checks; fatal() on invalid values. */
    void validate() const;
};

} // namespace interf::core

#endif // INTERF_CORE_CONFIG_HH
