/**
 * @file
 * Measurement-noise model.
 *
 * Real measurements are not deterministic: OS ticks, interrupts, SMT
 * neighbours and DRAM refresh perturb cycle counts even on the paper's
 * carefully quiesced systems (Section 5.5: services stopped, taskset
 * core pinning, stack randomization disabled). The paper counters the
 * residual noise by running each configuration five times and keeping
 * the median-cycle run.
 *
 * NoiseModel reproduces that environment: multiplicative Gaussian
 * jitter on the cycle count plus rare positive spikes (a daemon waking
 * up). Event counts are left exact, mirroring user-mode-only event
 * filtering. The model is seeded, so whole campaigns stay reproducible.
 */

#ifndef INTERF_CORE_NOISE_HH
#define INTERF_CORE_NOISE_HH

#include "util/random.hh"
#include "util/types.hh"

namespace interf::core
{

/** Noise environment parameters. */
struct NoiseConfig
{
    /** Relative sigma of per-run cycle jitter (quiesced system). */
    double jitterSigma = 0.002;
    /** Probability a run catches a system-activity spike. */
    double spikeProb = 0.04;
    /** Maximum relative cycle inflation of a spike. */
    double spikeMax = 0.03;
    /**
     * Noisy-system mode: multiplies jitter and spike rates, modeling a
     * machine that was *not* quiesced (for the methodology examples).
     */
    bool quiescent = true;

    /** A completely noise-free environment (for tests). */
    static NoiseConfig none();
};

/** Seeded generator of per-run cycle perturbations. */
class NoiseModel
{
  public:
    NoiseModel(const NoiseConfig &config, u64 seed);

    /**
     * Perturbed cycle count for one run.
     *
     * @param run_id Distinct id per physical run (layout, group, rep);
     *        the same (seed, run_id) always yields the same noise.
     * @param cycles The deterministic (true) cycle count.
     */
    Cycle perturbCycles(u64 run_id, Cycle cycles) const;

  private:
    NoiseConfig cfg_;
    u64 seed_;
};

} // namespace interf::core

#endif // INTERF_CORE_NOISE_HH
