#include "core/noise.hh"

#include <algorithm>
#include <cmath>

namespace interf::core
{

NoiseConfig
NoiseConfig::none()
{
    NoiseConfig cfg;
    cfg.jitterSigma = 0.0;
    cfg.spikeProb = 0.0;
    cfg.spikeMax = 0.0;
    return cfg;
}

NoiseModel::NoiseModel(const NoiseConfig &config, u64 seed)
    : cfg_(config), seed_(seed)
{
}

Cycle
NoiseModel::perturbCycles(u64 run_id, Cycle cycles) const
{
    Rng rng = Rng(seed_).fork(run_id);
    double sigma = cfg_.jitterSigma;
    double spike_prob = cfg_.spikeProb;
    double spike_max = cfg_.spikeMax;
    if (!cfg_.quiescent) {
        sigma *= 5.0;
        spike_prob = std::min(1.0, spike_prob * 5.0);
        spike_max *= 4.0;
    }
    double factor = 1.0 + sigma * rng.gaussian();
    if (rng.bernoulli(spike_prob))
        factor += spike_max * rng.nextDouble();
    factor = std::max(factor, 0.5); // guard against absurd draws
    double noisy = static_cast<double>(cycles) * factor;
    return static_cast<Cycle>(std::llround(noisy));
}

} // namespace interf::core
