#include "core/refmodel.hh"

#include <bit>

#include "util/logging.hh"

namespace interf::core::refmodel
{

RefCache::RefCache(const cache::CacheConfig &config) : cfg_(config)
{
    cfg_.validate();
    sets_ = cfg_.numSets();
    lineShift_ = static_cast<u32>(std::countr_zero(cfg_.lineBytes));
    lines_.resize(static_cast<size_t>(sets_) * cfg_.assoc);
}

bool
RefCache::access(Addr addr)
{
    ++stats_.accesses;
    Line *row = &lines_[static_cast<size_t>(setIndex(addr)) * cfg_.assoc];
    Addr tag = tagOf(addr);
    ++lruClock_;
    for (u32 w = 0; w < cfg_.assoc; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            row[w].lru = lruClock_;
            return true;
        }
    }
    ++stats_.misses;
    row[pickVictim(row)] = {true, tag, lruClock_};
    return false;
}

bool
RefCache::contains(Addr addr) const
{
    const Line *row =
        &lines_[static_cast<size_t>(setIndex(addr)) * cfg_.assoc];
    Addr tag = tagOf(addr);
    for (u32 w = 0; w < cfg_.assoc; ++w)
        if (row[w].valid && row[w].tag == tag)
            return true;
    return false;
}

void
RefCache::install(Addr addr)
{
    Line *row = &lines_[static_cast<size_t>(setIndex(addr)) * cfg_.assoc];
    Addr tag = tagOf(addr);
    ++lruClock_;
    for (u32 w = 0; w < cfg_.assoc; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            row[w].lru = lruClock_;
            return;
        }
    }
    row[pickVictim(row)] = {true, tag, lruClock_};
}

u32
RefCache::pickVictim(const Line *row)
{
    // Invalid ways first under either policy.
    for (u32 w = 0; w < cfg_.assoc; ++w)
        if (!row[w].valid)
            return w;
    if (cfg_.replacement == cache::Replacement::Random)
        return static_cast<u32>(victimRng_.uniformInt(cfg_.assoc));
    u32 victim = 0;
    for (u32 w = 1; w < cfg_.assoc; ++w)
        if (row[w].lru < row[victim].lru)
            victim = w;
    return victim;
}

RefHierarchy::RefHierarchy(const cache::HierarchyConfig &config)
    : cfg_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
}

cache::HitLevel
RefHierarchy::fetchInst(Addr addr)
{
    cache::HitLevel level;
    if (l1i_.access(addr)) {
        level = cache::HitLevel::L1;
    } else if (l2_.access(addr)) {
        level = cache::HitLevel::L2;
    } else {
        level = cache::HitLevel::Memory;
        ++l2InstMisses_;
    }

    // Sequential next-line prefetch: bring in the following line so
    // straight-line fetch rarely misses; conflict misses among hot
    // lines (the layout-sensitive kind) remain.
    if (cfg_.nextLinePrefetch) {
        u32 line_bytes = cfg_.l1i.lineBytes;
        Addr line = addr / line_bytes;
        if (line != lastFetchLine_) {
            lastFetchLine_ = line;
            Addr next = (line + 1) * line_bytes;
            if (!l1i_.contains(next)) {
                // The prefetch fills L1I via L2 without counting as a
                // demand L1I miss.
                if (!l2_.access(next))
                    ++l2PrefMisses_;
                l1i_.install(next);
            }
        }
    }
    return level;
}

cache::HitLevel
RefHierarchy::accessData(Addr addr)
{
    if (l1d_.access(addr))
        return cache::HitLevel::L1;
    if (l2_.access(addr))
        return cache::HitLevel::L2;
    ++l2DataMisses_;
    return cache::HitLevel::Memory;
}

void
RefHierarchy::clearStats()
{
    l1i_.clearStats();
    l1d_.clearStats();
    l2_.clearStats();
    l2InstMisses_ = 0;
    l2PrefMisses_ = 0;
    l2DataMisses_ = 0;
}

cache::HierarchyStats
RefHierarchy::stats() const
{
    cache::HierarchyStats s;
    s.l1i = l1i_.stats();
    s.l1d = l1d_.stats();
    s.l2 = l2_.stats();
    s.l2InstMisses = l2InstMisses_;
    s.l2PrefMisses = l2PrefMisses_;
    s.l2DataMisses = l2DataMisses_;
    return s;
}

RefBtb::RefBtb(u32 sets, u32 ways) : sets_(sets), ways_(ways)
{
    INTERF_ASSERT(sets >= 1 && (sets & (sets - 1)) == 0);
    INTERF_ASSERT(ways >= 1);
    entries_.resize(static_cast<size_t>(sets) * ways);
}

RefBtbResult
RefBtb::lookup(Addr pc) const
{
    const Entry *row = &entries_[static_cast<size_t>(setIndex(pc)) * ways_];
    for (u32 w = 0; w < ways_; ++w) {
        if (row[w].valid && row[w].tag == tagOf(pc))
            return {true, row[w].target};
    }
    return {};
}

void
RefBtb::update(Addr pc, Addr target)
{
    Entry *row = &entries_[static_cast<size_t>(setIndex(pc)) * ways_];
    ++lruClock_;
    // Hit: refresh.
    for (u32 w = 0; w < ways_; ++w) {
        if (row[w].valid && row[w].tag == tagOf(pc)) {
            row[w].target = target;
            row[w].lru = lruClock_;
            return;
        }
    }
    // Miss: replace invalid or LRU way.
    u32 victim = 0;
    for (u32 w = 0; w < ways_; ++w) {
        if (!row[w].valid) {
            victim = w;
            break;
        }
        if (row[w].lru < row[victim].lru)
            victim = w;
    }
    row[victim] = {true, tagOf(pc), target, lruClock_};
}

} // namespace interf::core::refmodel
