/**
 * @file
 * Minimal JSON value: parse, build, serialize.
 *
 * The telemetry layer speaks JSON at every boundary — run manifests,
 * Chrome trace events, store listings — and the tools on the other side
 * (interf_stats, tests, CI validators) must read those documents back.
 * This is the one JSON implementation the repo uses for both
 * directions: a plain tagged value with an exact recursive-descent
 * parser (no dependencies, no SAX, no allocator tricks).
 *
 * Deliberate limits: numbers are doubles (with a u64 fast path for
 * integers that fit exactly), object keys keep insertion order and may
 * repeat (last one wins on lookup), and dump() emits UTF-8 with the
 * minimal escape set. NaN/Inf are not representable in JSON and dump as
 * 0 — the same policy bench_common's report writer has always used.
 */

#ifndef INTERF_UTIL_JSON_HH
#define INTERF_UTIL_JSON_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace interf
{

/** One JSON value (null, bool, number, string, array or object). */
class Json
{
  public:
    enum class Type : u8 { Null, Bool, Number, String, Array, Object };

    Json() = default; ///< null
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(u32 v) : type_(Type::Number), num_(v) {}
    Json(u64 v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(i64 v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** @{ Factories for the composite types. */
    static Json array() { return Json(Type::Array); }
    static Json object() { return Json(Type::Object); }
    /** @} */

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** @{ Value accessors; defaults returned on type mismatch. */
    bool asBool(bool def = false) const
    {
        return isBool() ? bool_ : def;
    }
    double asDouble(double def = 0.0) const
    {
        return isNumber() ? num_ : def;
    }
    i64 asInt(i64 def = 0) const
    {
        return isNumber() ? static_cast<i64>(num_) : def;
    }
    u64 asU64(u64 def = 0) const
    {
        return isNumber() && num_ >= 0 ? static_cast<u64>(num_) : def;
    }
    const std::string &asString() const { return str_; }
    /** @} */

    /** Number of elements (array) or members (object); 0 otherwise. */
    size_t size() const;

    /** @{ Array access: element i, or a null sentinel out of range. */
    const Json &at(size_t i) const;
    void push(Json v);
    /** @} */

    /** @{ Object access. */
    bool has(std::string_view key) const { return find(key) != nullptr; }

    /** Last member named @p key, or nullptr. */
    const Json *find(std::string_view key) const;

    /** Member @p key, or a shared null sentinel when absent. */
    const Json &get(std::string_view key) const;

    /** Append a member (keys are not deduplicated). */
    void set(std::string key, Json v);

    /** In insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }
    /** @} */

    const std::vector<Json> &elements() const { return elems_; }

    /**
     * Serialize. @p indent < 0 gives the compact single-line form;
     * >= 0 pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /**
     * Parse a complete JSON document (trailing garbage is an error).
     *
     * @param text The document.
     * @param out Receives the value on success.
     * @param error Receives a message with offset on failure (optional).
     * @return Whether the parse succeeded.
     */
    static bool parse(std::string_view text, Json &out,
                      std::string *error = nullptr);

    /** Parse a whole file; false (with @p error) on I/O or parse error. */
    static bool parseFile(const std::string &path, Json &out,
                          std::string *error = nullptr);

  private:
    explicit Json(Type t) : type_(t) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> elems_;
    std::vector<std::pair<std::string, Json>> members_;
};

/** Render a string with JSON escaping, including the quotes. */
std::string jsonQuote(std::string_view s);

} // namespace interf

#endif // INTERF_UTIL_JSON_HH
