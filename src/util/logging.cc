#include "util/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace interf
{

namespace
{

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

void
emit(const char *tag, const char *fmt, va_list ap)
{
    std::string msg = vstrprintf(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // anonymous namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrprintf(fmt, ap);
    va_end(ap);
    return out;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

} // namespace interf
