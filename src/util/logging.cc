#include "util/logging.hh"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <utility>

namespace interf
{

namespace
{

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Panic:
        return "panic";
    }
    return "log";
}

/**
 * One sink serializes all messages: timestamps, dedup state, and the
 * observer all live behind this lock. Fatal/panic paths take it too —
 * acceptable, they are about to end the process anyway.
 */
struct LogSink
{
    std::mutex mutex;
    std::function<void(LogLevel, const std::string &)> observer;
    std::string lastMessage; ///< Last line printed (dedup key).
    LogLevel lastLevel = LogLevel::Inform;
    unsigned long suppressed = 0; ///< Repeats of lastMessage not printed.
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();

    /** Env knobs are re-read per call so tests can toggle them. */
    static bool
    timestampsOn()
    {
        const char *env = std::getenv("INTERF_LOG_TS");
        return env && std::string_view(env) == "1";
    }

    static bool
    dedupOn()
    {
        const char *env = std::getenv("INTERF_LOG_DEDUP");
        return !env || std::string_view(env) != "0";
    }

    void
    printLocked(LogLevel level, const std::string &body)
    {
        if (timestampsOn()) {
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - epoch)
                              .count();
            std::fprintf(stderr, "[+%.3f] %s: %s\n", secs,
                         levelTag(level), body.c_str());
        } else {
            std::fprintf(stderr, "%s: %s\n", levelTag(level),
                         body.c_str());
        }
    }

    void
    flushSuppressedLocked()
    {
        if (suppressed == 0)
            return;
        printLocked(lastLevel,
                    strprintf("last message repeated %lu more time%s",
                              suppressed, suppressed == 1 ? "" : "s"));
        suppressed = 0;
    }

    void
    emit(LogLevel level, const std::string &msg)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (observer)
            observer(level, msg);
        // Only survivable warnings dedup: repeated identical warn()
        // calls (e.g. one per layout in a loop) collapse to one line
        // plus a repeat count. Everything else always prints.
        if (level == LogLevel::Warn && dedupOn() && msg == lastMessage) {
            ++suppressed;
            return;
        }
        flushSuppressedLocked();
        lastMessage = msg;
        lastLevel = level;
        printLocked(level, msg);
    }
};

LogSink &
logSink()
{
    static LogSink *sink = new LogSink();
    return *sink;
}

void
emit(LogLevel level, const char *fmt, va_list ap)
{
    logSink().emit(level, vstrprintf(fmt, ap));
}

} // anonymous namespace

void
setLogObserver(std::function<void(LogLevel, const std::string &)> obs)
{
    LogSink &sink = logSink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    sink.observer = std::move(obs);
}

void
flushLog()
{
    LogSink &sink = logSink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    sink.flushSuppressedLocked();
    sink.lastMessage.clear();
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrprintf(fmt, ap);
    va_end(ap);
    return out;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Panic, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Fatal, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Warn, fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Inform, fmt, ap);
    va_end(ap);
}

} // namespace interf
