#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace interf
{

u64
splitmix64(u64 &state)
{
    u64 z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

inline u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(u64 seed) : seed_(seed)
{
    u64 sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

u64
Rng::next()
{
    u64 result = rotl(state_[1] * 5, 7) * 9;
    u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

u64
Rng::uniformInt(u64 bound)
{
    INTERF_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    u64 threshold = (~bound + 1) % bound; // == 2^64 mod bound
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

i64
Rng::uniformRange(i64 lo, i64 hi)
{
    INTERF_ASSERT(lo <= hi);
    u64 span = static_cast<u64>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<i64>(next());
    return lo + static_cast<i64>(uniformInt(span));
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

double
Rng::exponential(double lambda)
{
    INTERF_ASSERT(lambda > 0.0);
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

u64
Rng::geometric(double p)
{
    INTERF_ASSERT(p > 0.0 && p <= 1.0);
    if (p >= 1.0)
        return 0;
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return static_cast<u64>(std::floor(std::log(u) / std::log1p(-p)));
}

std::vector<u32>
Rng::permutation(size_t n)
{
    std::vector<u32> p(n);
    for (size_t i = 0; i < n; ++i)
        p[i] = static_cast<u32>(i);
    shuffle(p);
    return p;
}

Rng
Rng::fork(u64 stream_id) const
{
    // Mix the parent's seed with the stream id through SplitMix64 so
    // children with different ids are decorrelated from each other and
    // from the parent.
    u64 s = seed_ ^ (0x6a09e667f3bcc909ULL + stream_id * 0x9e3779b97f4a7c15ULL);
    u64 mixed = splitmix64(s);
    return Rng(mixed ^ stream_id);
}

} // namespace interf
