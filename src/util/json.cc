#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace interf
{

namespace
{

const Json kNullJson{};

/** Recursive-descent parser over a string_view with offset tracking. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool parseDocument(Json &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool fail(const std::string &msg)
    {
        if (error_ && error_->empty())
            *error_ = strprintf("JSON parse error at offset %zu: %s",
                                pos_, msg.c_str());
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool parseValue(Json &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n':
            out = Json();
            return literal("null");
          case 't':
            out = Json(true);
            return literal("true");
          case 'f':
            out = Json(false);
            return literal("false");
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
          }
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            return parseNumber(out);
        }
    }

    bool parseNumber(Json &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(v)) {
            pos_ = start;
            return fail("malformed number");
        }
        out = Json(v);
        return true;
    }

    bool parseHex4(u32 &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            u32 digit = 0;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = 10 + (c - 'a');
            else if (c >= 'A' && c <= 'F')
                digit = 10 + (c - 'A');
            else
                return fail("bad hex digit in \\u escape");
            out = (out << 4) | digit;
        }
        return true;
    }

    static void appendUtf8(std::string &s, u32 cp)
    {
        if (cp < 0x80) {
            s.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                u32 cp = 0;
                if (!parseHex4(cp))
                    return false;
                // Surrogate pair: a high surrogate must be followed by
                // \uDC00..\uDFFF; combine into one code point.
                if (cp >= 0xD800 && cp <= 0xDBFF &&
                    text_.substr(pos_, 2) == "\\u") {
                    size_t save = pos_;
                    pos_ += 2;
                    u32 lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo >= 0xDC00 && lo <= 0xDFFF)
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    else
                        pos_ = save; // not a pair; keep both as-is
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("invalid escape character");
            }
        }
    }

    bool parseArray(Json &out, int depth)
    {
        ++pos_; // '['
        out = Json::array();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Json elem;
            skipWs();
            if (!parseValue(elem, depth + 1))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
    }

    bool parseObject(Json &out, int depth)
    {
        ++pos_; // '{'
        out = Json::object();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':' after object key");
            Json value;
            skipWs();
            if (!parseValue(value, depth + 1))
                return false;
            out.set(std::move(key), std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    std::string *error_;
    size_t pos_ = 0;
};

/** JSON has no NaN/Inf: map those to 0, integers to exact digits. */
std::string
numberText(double v)
{
    if (!std::isfinite(v))
        return "0";
    // Integers that a double holds exactly print without a fraction, so
    // counters and byte sizes round-trip digit for digit.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Prefer the shortest representation that round-trips.
    for (int prec = 6; prec < 17; ++prec) {
        char shorter[40];
        std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
        if (std::strtod(shorter, nullptr) == v)
            return shorter;
    }
    return buf;
}

} // anonymous namespace

std::string
jsonQuote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

size_t
Json::size() const
{
    if (isArray())
        return elems_.size();
    if (isObject())
        return members_.size();
    return 0;
}

const Json &
Json::at(size_t i) const
{
    if (!isArray() || i >= elems_.size())
        return kNullJson;
    return elems_[i];
}

void
Json::push(Json v)
{
    INTERF_ASSERT(isArray());
    elems_.push_back(std::move(v));
}

const Json *
Json::find(std::string_view key) const
{
    const Json *found = nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            found = &v;
    return found;
}

const Json &
Json::get(std::string_view key) const
{
    const Json *found = find(key);
    return found ? *found : kNullJson;
}

void
Json::set(std::string key, Json v)
{
    INTERF_ASSERT(isObject());
    members_.emplace_back(std::move(key), std::move(v));
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    auto newline = [&](int d) {
        if (pretty) {
            out.push_back('\n');
            out.append(static_cast<size_t>(indent) * d, ' ');
        }
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        out += numberText(num_);
        break;
      case Type::String:
        out += jsonQuote(str_);
        break;
      case Type::Array:
        if (elems_.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (size_t i = 0; i < elems_.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            elems_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back(']');
        break;
      case Type::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        for (size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            out += jsonQuote(members_[i].first);
            out.push_back(':');
            if (pretty)
                out.push_back(' ');
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back('}');
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

bool
Json::parse(std::string_view text, Json &out, std::string *error)
{
    if (error)
        error->clear();
    Parser p(text, error);
    return p.parseDocument(out);
}

bool
Json::parseFile(const std::string &path, Json &out, std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = strprintf("cannot open '%s'", path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    if (!is.good() && !is.eof()) {
        if (error)
            *error = strprintf("error reading '%s'", path.c_str());
        return false;
    }
    return parse(ss.str(), out, error);
}

} // namespace interf
