/**
 * @file
 * Seeded, reproducible pseudo-random number generation.
 *
 * Program interferometry depends on reproducibility: the paper's Camino
 * toolchain "accepts a seed to a pseudorandom number generator to generate
 * pseudo-random but reproducible orderings of procedures and object
 * files". Every stochastic component of this library (layout permutation,
 * heap placement, trace generation, measurement noise) draws from an
 * explicitly seeded Rng so that a given key always reproduces the same
 * experiment.
 *
 * The generator is xoshiro256** seeded through SplitMix64, which gives
 * high-quality 64-bit output, cheap construction, and cheap independent
 * substreams via fork().
 */

#ifndef INTERF_UTIL_RANDOM_HH
#define INTERF_UTIL_RANDOM_HH

#include <array>
#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace interf
{

/**
 * SplitMix64 step: used for seeding and for deriving substream seeds.
 *
 * @param state Seed state; advanced in place.
 * @return The next 64-bit output.
 */
u64 splitmix64(u64 &state);

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * All methods are deterministic functions of the seed and the call
 * sequence. Copying an Rng copies its state; fork() derives an
 * independent stream keyed by a caller-chosen stream id, so unrelated
 * components never perturb each other's sequences.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (any value, including 0, is fine). */
    explicit Rng(u64 seed = 0);

    /** Next raw 64-bit value. */
    u64 next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound); bound must be > 0. */
    u64 uniformInt(u64 bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    i64 uniformRange(i64 lo, i64 hi);

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Standard normal draw (Box-Muller with caching). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Exponential draw with the given rate lambda (> 0). */
    double exponential(double lambda);

    /**
     * Geometric-like integer draw: number of failures before the first
     * success with success probability p in (0, 1].
     */
    u64 geometric(double p);

    /** Fisher-Yates shuffle of an arbitrary vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(uniformInt(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** A random permutation of [0, n). */
    std::vector<u32> permutation(size_t n);

    /**
     * Derive an independent child generator.
     *
     * @param stream_id Caller-chosen identifier; the same (seed,
     *        stream_id) pair always yields the same child stream.
     */
    Rng fork(u64 stream_id) const;

  private:
    std::array<u64, 4> state_;
    u64 seed_;
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace interf

#endif // INTERF_UTIL_RANDOM_HH
