#include "util/digest.hh"

#include <bit>

#include "util/logging.hh"

namespace interf
{

void
Digest::mixDouble(double value)
{
    mix(std::bit_cast<u64>(value));
}

void
Digest::mixString(std::string_view s)
{
    mix(s.size());
    for (unsigned char c : s)
        mix(c);
}

std::string
digestHex(u64 digest)
{
    return strprintf("%016llx", static_cast<unsigned long long>(digest));
}

bool
parseDigestHex(std::string_view text, u64 &digest)
{
    if (text.size() != 16)
        return false;
    u64 value = 0;
    for (char c : text) {
        u64 nibble = 0;
        if (c >= '0' && c <= '9')
            nibble = static_cast<u64>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nibble = static_cast<u64>(c - 'a') + 10;
        else
            return false;
        value = (value << 4) | nibble;
    }
    digest = value;
    return true;
}

} // namespace interf
