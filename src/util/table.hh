/**
 * @file
 * Aligned text-table and CSV rendering used by the bench harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures;
 * TableWriter produces the human-readable rows on stdout and, optionally,
 * machine-readable CSV next to them so plots can be regenerated.
 */

#ifndef INTERF_UTIL_TABLE_HH
#define INTERF_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace interf
{

/** Column alignment inside a rendered text table. */
enum class Align { Left, Right };

/**
 * Accumulates rows of strings and renders them as an aligned text table
 * or as CSV. Numeric convenience setters format through printf-style
 * specifications so benches control the displayed precision.
 */
class TableWriter
{
  public:
    /** Declare a column. Call for all columns before adding rows. */
    void addColumn(const std::string &header, Align align = Align::Right);

    /** Begin a new (empty) row. */
    void beginRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &text);

    /** Append an integer cell. */
    void cell(long long value);

    /** Append a floating-point cell with the given printf format. */
    void cell(double value, const char *fmt = "%.3f");

    /** Number of data rows added so far. */
    size_t rows() const { return rows_.size(); }

    /** Render as an aligned text table (with header and rule). */
    void print(std::ostream &os) const;

    /** Render as CSV (header row first). */
    void printCsv(std::ostream &os) const;

    /** Write CSV to a file path; warn()s and continues on failure. */
    void writeCsv(const std::string &path) const;

  private:
    struct Column
    {
        std::string header;
        Align align;
    };

    std::vector<Column> columns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace interf

#endif // INTERF_UTIL_TABLE_HH
