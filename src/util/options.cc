#include "util/options.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace interf
{

OptionParser::OptionParser(std::string program_name, std::string description)
    : programName_(std::move(program_name)),
      description_(std::move(description))
{
}

void
OptionParser::addInt(const std::string &name, i64 def,
                     const std::string &help)
{
    Option opt;
    opt.kind = Kind::Int;
    opt.help = help;
    opt.intValue = def;
    opt.defaultText = std::to_string(def);
    options_[name] = opt;
    order_.push_back(name);
}

void
OptionParser::addDouble(const std::string &name, double def,
                        const std::string &help)
{
    Option opt;
    opt.kind = Kind::Double;
    opt.help = help;
    opt.doubleValue = def;
    opt.defaultText = strprintf("%g", def);
    options_[name] = opt;
    order_.push_back(name);
}

void
OptionParser::addString(const std::string &name, const std::string &def,
                        const std::string &help)
{
    Option opt;
    opt.kind = Kind::String;
    opt.help = help;
    opt.stringValue = def;
    opt.defaultText = def.empty() ? "\"\"" : def;
    options_[name] = opt;
    order_.push_back(name);
}

void
OptionParser::addFlag(const std::string &name, const std::string &help)
{
    Option opt;
    opt.kind = Kind::Flag;
    opt.help = help;
    opt.defaultText = "off";
    options_[name] = opt;
    order_.push_back(name);
}

void
OptionParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected argument '%s' (options start with --)",
                  arg.c_str());
        std::string name = arg.substr(2);
        std::string value;
        bool have_value = false;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            have_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end())
            fatal("unknown option '--%s' (try --help)", name.c_str());
        Option &opt = it->second;
        if (opt.kind == Kind::Flag) {
            if (have_value)
                fatal("flag '--%s' does not take a value", name.c_str());
            opt.flagValue = true;
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc)
                fatal("option '--%s' requires a value", name.c_str());
            value = argv[++i];
        }
        char *end = nullptr;
        switch (opt.kind) {
          case Kind::Int:
            opt.intValue = std::strtoll(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                fatal("option '--%s' expects an integer, got '%s'",
                      name.c_str(), value.c_str());
            break;
          case Kind::Double:
            opt.doubleValue = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                fatal("option '--%s' expects a number, got '%s'",
                      name.c_str(), value.c_str());
            break;
          case Kind::String:
            opt.stringValue = value;
            break;
          case Kind::Flag:
            break; // handled above
        }
    }
}

const OptionParser::Option &
OptionParser::find(const std::string &name, Kind kind) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        panic("option '%s' was never declared", name.c_str());
    if (it->second.kind != kind)
        panic("option '%s' accessed with the wrong type", name.c_str());
    return it->second;
}

i64
OptionParser::getInt(const std::string &name) const
{
    return find(name, Kind::Int).intValue;
}

double
OptionParser::getDouble(const std::string &name) const
{
    return find(name, Kind::Double).doubleValue;
}

const std::string &
OptionParser::getString(const std::string &name) const
{
    return find(name, Kind::String).stringValue;
}

bool
OptionParser::getFlag(const std::string &name) const
{
    return find(name, Kind::Flag).flagValue;
}

std::string
OptionParser::usage() const
{
    std::ostringstream os;
    os << programName_ << ": " << description_ << "\n\noptions:\n";
    for (const auto &name : order_) {
        const Option &opt = options_.at(name);
        os << "  --" << name;
        switch (opt.kind) {
          case Kind::Int:
            os << " <int>";
            break;
          case Kind::Double:
            os << " <num>";
            break;
          case Kind::String:
            os << " <str>";
            break;
          case Kind::Flag:
            break;
        }
        os << "\n      " << opt.help << " (default: " << opt.defaultText
           << ")\n";
    }
    os << "  --help\n      show this message\n";
    return os.str();
}

} // namespace interf
