/**
 * @file
 * Fundamental scalar type aliases used throughout the library.
 *
 * The conventions follow simulator practice: an Addr is a 64-bit virtual
 * address, a Cycle is an absolute or relative clock-cycle count, and a
 * Count is a saturating-free 64-bit event tally.
 */

#ifndef INTERF_UTIL_TYPES_HH
#define INTERF_UTIL_TYPES_HH

#include <cstdint>

namespace interf
{

/** A 64-bit virtual address (code or data). */
using Addr = std::uint64_t;

/** A clock-cycle count. */
using Cycle = std::uint64_t;

/** A generic 64-bit event count (instructions, misses, ...). */
using Count = std::uint64_t;

/** Convenience shorthands for fixed-width integers. */
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

} // namespace interf

#endif // INTERF_UTIL_TYPES_HH
