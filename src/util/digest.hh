/**
 * @file
 * Streaming 64-bit structural digest.
 *
 * One mixing function shared by everything that fingerprints state:
 * trace/io.cc binds traces to the program that generated them, and
 * store/ binds cached campaign samples to the exact (program, config)
 * that produced them. The mixer is the classic Fibonacci-hash combine
 * (boost::hash_combine's 64-bit form); it is pure integer arithmetic on
 * explicitly-serialized fields, so digests are stable across runs,
 * builds and machines of the same endianness — a requirement for any
 * value that names an on-disk artifact.
 */

#ifndef INTERF_UTIL_DIGEST_HH
#define INTERF_UTIL_DIGEST_HH

#include <string>
#include <string_view>

#include "util/types.hh"

namespace interf
{

/** Accumulates a 64-bit digest over explicitly-fed fields. */
class Digest
{
  public:
    /** The historical seed of trace::programChecksum. */
    static constexpr u64 kDefaultSeed = 0x1f0e3dad99158a12ULL;

    explicit Digest(u64 seed = kDefaultSeed) : state_(seed) {}

    /** Fold one 64-bit value into the digest. */
    void mix(u64 value)
    {
        state_ ^= value + 0x9e3779b97f4a7c15ULL + (state_ << 6) +
                  (state_ >> 2);
    }

    /** Fold a double by bit pattern (not by value rounding). */
    void mixDouble(double value);

    /** Fold a bool as 0/1. */
    void mixBool(bool value) { mix(value ? 1 : 0); }

    /** Fold a string: length plus every byte. */
    void mixString(std::string_view s);

    /** The digest of everything mixed so far. */
    u64 value() const { return state_; }

  private:
    u64 state_;
};

/** Render a digest the way store directories are named: 16 hex digits. */
std::string digestHex(u64 digest);

/**
 * Parse a digestHex() string back to a value.
 *
 * @return false if @p text is not exactly 16 lower-case hex digits.
 */
bool parseDigestHex(std::string_view text, u64 &digest);

} // namespace interf

#endif // INTERF_UTIL_DIGEST_HH
