/**
 * @file
 * Minimal command-line option parser for the bench and example binaries.
 *
 * Supports --name value, --name=value, and boolean --flag forms. Every
 * option has a default so that all binaries run with no arguments; the
 * benches use this to offer paper-scale runs behind flags (e.g.
 * --layouts 100 --instructions 4000000) while keeping the default run
 * quick.
 */

#ifndef INTERF_UTIL_OPTIONS_HH
#define INTERF_UTIL_OPTIONS_HH

#include <map>
#include <string>
#include <vector>

#include "util/types.hh"

namespace interf
{

/** Declarative command-line option set with typed accessors. */
class OptionParser
{
  public:
    /**
     * @param program_name Shown in the usage banner.
     * @param description One-line summary of what the binary does.
     */
    OptionParser(std::string program_name, std::string description);

    /** Declare an integer option with a default value. */
    void addInt(const std::string &name, i64 def, const std::string &help);

    /** Declare a floating-point option with a default value. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);

    /** Declare a string option with a default value. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Declare a boolean flag (default false; presence sets it true). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. On --help prints usage and exits(0); on malformed
     * input calls fatal(). Unknown options are fatal errors.
     */
    void parse(int argc, char **argv);

    /** @{ Typed accessors; fatal() on name or type mismatch. */
    i64 getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    const std::string &getString(const std::string &name) const;
    bool getFlag(const std::string &name) const;
    /** @} */

    /** Render the usage text (also printed by --help). */
    std::string usage() const;

  private:
    enum class Kind { Int, Double, String, Flag };

    struct Option
    {
        Kind kind;
        std::string help;
        i64 intValue = 0;
        double doubleValue = 0.0;
        std::string stringValue;
        bool flagValue = false;
        std::string defaultText;
    };

    const Option &find(const std::string &name, Kind kind) const;

    std::string programName_;
    std::string description_;
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;
};

} // namespace interf

#endif // INTERF_UTIL_OPTIONS_HH
