#include "util/table.hh"

#include <fstream>
#include <ostream>

#include "util/logging.hh"

namespace interf
{

void
TableWriter::addColumn(const std::string &header, Align align)
{
    INTERF_ASSERT(rows_.empty());
    columns_.push_back({header, align});
}

void
TableWriter::beginRow()
{
    if (!rows_.empty() && rows_.back().size() != columns_.size())
        panic("table row has %zu cells, expected %zu", rows_.back().size(),
              columns_.size());
    rows_.emplace_back();
    rows_.back().reserve(columns_.size());
}

void
TableWriter::cell(const std::string &text)
{
    INTERF_ASSERT(!rows_.empty());
    INTERF_ASSERT(rows_.back().size() < columns_.size());
    rows_.back().push_back(text);
}

void
TableWriter::cell(long long value)
{
    cell(std::to_string(value));
}

void
TableWriter::cell(double value, const char *fmt)
{
    cell(strprintf(fmt, value));
}

void
TableWriter::print(std::ostream &os) const
{
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].header.size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_cell = [&](const std::string &text, size_t c) {
        size_t pad = widths[c] - text.size();
        if (columns_[c].align == Align::Right)
            os << std::string(pad, ' ') << text;
        else
            os << text << std::string(pad, ' ');
    };

    for (size_t c = 0; c < columns_.size(); ++c) {
        if (c)
            os << "  ";
        emit_cell(columns_[c].header, c);
    }
    os << '\n';
    size_t total = 0;
    for (size_t c = 0; c < columns_.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            emit_cell(row[c], c);
        }
        os << '\n';
    }
}

namespace
{

std::string
csvEscape(const std::string &text)
{
    bool needs_quotes = text.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return text;
    std::string out = "\"";
    for (char ch : text) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // anonymous namespace

void
TableWriter::printCsv(std::ostream &os) const
{
    for (size_t c = 0; c < columns_.size(); ++c) {
        if (c)
            os << ',';
        os << csvEscape(columns_[c].header);
    }
    os << '\n';
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << csvEscape(row[c]);
        }
        os << '\n';
    }
}

void
TableWriter::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open '%s' for writing; skipping CSV", path.c_str());
        return;
    }
    printCsv(out);
}

} // namespace interf
