/**
 * @file
 * gem5-style status and error reporting.
 *
 * Two error functions with distinct purposes:
 *   - panic(): something happened that should never happen regardless of
 *     what the user does, i.e. a library bug. Calls std::abort().
 *   - fatal(): the run cannot continue because of a user error (bad
 *     configuration, invalid arguments). Calls std::exit(1).
 *
 * warn() and inform() report conditions without stopping execution.
 *
 * All functions accept printf-style format strings; formatting is done
 * with vsnprintf (GCC 12 in this environment lacks <format>).
 *
 * Every message flows through one sink before reaching stderr, which
 * gives three things on top of the plain fprintf of old:
 *
 *  - INTERF_LOG_TS=1 prefixes each line with seconds since process
 *    start ("[+12.345]"), for correlating stderr with telemetry spans;
 *  - consecutive identical warnings are deduplicated: the first prints,
 *    repeats are counted and summarized when a different message (or
 *    flushLog()) arrives — INTERF_LOG_DEDUP=0 disables;
 *  - an optional observer (setLogObserver) sees every message before
 *    dedup, which is how the telemetry layer captures warning counts
 *    and texts into run manifests.
 */

#ifndef INTERF_UTIL_LOGGING_HH
#define INTERF_UTIL_LOGGING_HH

#include <functional>
#include <string>

namespace interf
{

/** Severity of a message passing through the log sink. */
enum class LogLevel : unsigned char { Inform, Warn, Fatal, Panic };

/**
 * Observe every formatted message (including ones dedup later
 * suppresses). One observer at a time; pass nullptr to clear. The
 * observer runs under the logging lock: keep it fast and never log
 * from inside it.
 */
void setLogObserver(std::function<void(LogLevel, const std::string &)> obs);

/**
 * Emit the pending "last message repeated N more times" summary, if
 * any. Call before exiting a tool whose last warnings repeated.
 */
void flushLog();

/**
 * Format a printf-style message into a std::string.
 *
 * @param fmt printf-style format string.
 * @return The formatted message.
 */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a library bug and abort. Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and exit(1). Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Runtime-checkable invariant: panics with the stringified condition when
 * the condition is false. Active in all build types, unlike assert().
 */
#define INTERF_ASSERT(cond)                                                 \
    do {                                                                    \
        if (!(cond))                                                        \
            ::interf::panic("assertion failed: %s (%s:%d)", #cond,          \
                            __FILE__, __LINE__);                            \
    } while (0)

} // namespace interf

#endif // INTERF_UTIL_LOGGING_HH
