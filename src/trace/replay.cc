#include "trace/replay.hh"

#include <unordered_map>

#include "telemetry/span.hh"
#include "util/logging.hh"
#include "verify/verify.hh"

namespace interf::trace
{

ReplayPlan::ReplayPlan(const Program &prog, const Trace &trace)
{
    INTERF_SPAN("plan.compile");
    const auto &procs = prog.procedures();

    // Site table: dense proc-major block numbering.
    procFirstSite.resize(procs.size());
    u32 site_cursor = 0;
    for (const auto &p : procs) {
        procFirstSite[p.id] = site_cursor;
        site_cursor += static_cast<u32>(p.blocks.size());
    }
    siteProc.resize(site_cursor);
    siteBlock.resize(site_cursor);
    siteBytes.resize(site_cursor);
    for (const auto &p : procs)
        for (u32 b = 0; b < p.blocks.size(); ++b) {
            u32 s = procFirstSite[p.id] + b;
            siteProc[s] = p.id;
            siteBlock[s] = b;
            siteBytes[s] = p.blocks[b].bytes;
        }

    const size_t n = trace.events.size();
    site.resize(n);
    bytes.resize(n);
    nInsts.resize(n);
    extraExecCycles.resize(n);
    nMem.resize(n);
    flags.resize(n);
    targetSite.resize(n);
    rasPushSite.resize(n);
    returnSite.resize(n);

    memId = trace.memIds;
    memIsStore.resize(memId.size());

    // Rank the stream against its universe of distinct ids (first-
    // appearance order) so per-layout materialization decodes each
    // unique id once and gathers the stream.
    memRank.resize(memId.size());
    std::unordered_map<u64, u32> rank_of;
    rank_of.reserve(memId.size() / 4);
    for (size_t j = 0; j < memId.size(); ++j) {
        auto [it, fresh] = rank_of.try_emplace(
            memId[j], static_cast<u32>(memUniverse.size()));
        if (fresh)
            memUniverse.push_back(memId[j]);
        memRank[j] = it->second;
    }
    condSite.reserve(trace.condBranches);
    condTaken.reserve(trace.condBranches);

    size_t mem_cursor = 0;
    for (size_t i = 0; i < n; ++i) {
        const BlockEvent &ev = trace.events[i];
        const BasicBlock &bb = prog.block(ev.proc, ev.block);
        const u32 s = siteOf(ev.proc, ev.block);
        site[i] = s;
        bytes[i] = bb.bytes;
        nInsts[i] = bb.nInsts;
        extraExecCycles[i] = bb.extraExecCycles;
        INTERF_ASSERT(bb.memRefs.size() <= 0xffff);
        nMem[i] = static_cast<u16>(bb.memRefs.size());
        for (const MemRef &ref : bb.memRefs)
            memIsStore[mem_cursor++] = ref.isStore ? 1 : 0;

        u8 f = 0;
        u32 target = kNoSite;
        u32 ras_push = kNoSite;
        u32 ret = kNoSite;
        if (ev.taken)
            f |= kTaken;
        const StaticBranch &br = bb.branch;
        if (br.exists()) {
            f |= kHasBranch;
            if (br.isConditional()) {
                f |= kCond;
                if (br.dependsOnLoad)
                    f |= kDependsOnLoad;
                condSite.push_back(s);
                condTaken.push_back(ev.taken);
            }
            switch (br.kind) {
              case OpClass::Return:
                f |= kReturn;
                if (i + 1 < n) {
                    const BlockEvent &next = trace.events[i + 1];
                    ret = siteOf(next.proc, next.block);
                }
                break;
              case OpClass::Call: {
                f |= kCall;
                // The call target is the callee's entry: its first
                // block starts at the procedure base (offset 0).
                INTERF_ASSERT(!procs[br.targetProc].blocks.empty());
                target = procFirstSite[br.targetProc];
                u32 next_block = static_cast<u32>(ev.block) + 1;
                if (next_block < procs[ev.proc].blocks.size())
                    ras_push = siteOf(ev.proc, next_block);
                break;
              }
              case OpClass::IndirectBranch:
                f |= kIndirect;
                target = siteOf(br.targetProc,
                                static_cast<u32>(br.targetBlock) +
                                    ev.indirectChoice);
                break;
              default:
                target = siteOf(br.targetProc, br.targetBlock);
            }
        }
        flags[i] = f;
        targetSite[i] = target;
        rasPushSite[i] = ras_push;
        returnSite[i] = ret;
    }
    INTERF_ASSERT(mem_cursor == memId.size());
    instCount = trace.instCount;

    // Trust boundary: everything downstream (layout tables, the replay
    // kernel, the campaign cache key) assumes this plan restates the
    // trace exactly. Debug builds / INTERF_VERIFY=1 prove it here.
    if (verify::verifyOnTrust())
        verify::requireClean(verify::verifyPlan(prog, trace, *this),
                             "ReplayPlan");
}

u64
ReplayPlan::memoryBytes() const
{
    u64 per_event = sizeof(u32) * 4 + sizeof(u16) * 2 + sizeof(u8) * 2;
    return eventCount() * per_event +
           memCount() * (sizeof(u64) + sizeof(u8)) +
           condSite.size() * (sizeof(u32) + sizeof(u8)) +
           siteCount() * sizeof(u32) * 2 +
           procFirstSite.size() * sizeof(u32);
}

void
LayoutTables::fillCode(const ReplayPlan &plan,
                       const layout::CodeLayout &code)
{
    const size_t n_sites = plan.siteCount();
    siteAddr.resize(n_sites);
    branchAddr.resize(n_sites);
    for (size_t s = 0; s < n_sites; ++s) {
        u32 proc = plan.siteProc[s];
        u32 block = plan.siteBlock[s];
        siteAddr[s] = code.blockAddr(proc, block);
        branchAddr[s] = code.branchAddr(proc, block);
    }

    // The replay kernel's BTB tags targets by plan site index where the
    // reference model tags by target address (timing.cc), which agrees
    // only if no two target sites share a block address in this layout.
    // Blocks have nonzero size so a well-formed CodeLayout cannot alias
    // them, but that is a property of the layout engines, not of this
    // function — prove it at the trust boundary rather than assume it.
    if (verify::verifyOnTrust()) {
        std::vector<u8> is_target(n_sites, 0);
        for (u32 t : plan.targetSite)
            if (t != ReplayPlan::kNoSite)
                is_target[t] = 1;
        std::unordered_map<Addr, u32> site_at;
        for (u32 s = 0; s < n_sites; ++s) {
            if (!is_target[s])
                continue;
            auto [it, fresh] = site_at.try_emplace(siteAddr[s], s);
            if (!fresh)
                panic("layout aliases branch-target sites %u and %u at "
                      "address %llx: site-index BTB tagging would "
                      "diverge from the address-tagged reference",
                      it->second, s,
                      static_cast<unsigned long long>(siteAddr[s]));
        }
    }
}

LayoutTables::LayoutTables(const ReplayPlan &plan,
                           const layout::CodeLayout &code)
{
    fillCode(plan, code);
}

LayoutTables::LayoutTables(const ReplayPlan &plan,
                           const layout::CodeLayout &code,
                           const layout::HeapLayout &heap,
                           const layout::PageMap &pages,
                           u32 fetch_line_bytes)
    : pages_(pages), hasData_(true)
{
    fillCode(plan, code);

    // Materialize the data-address table over the memory-id universe,
    // pre-translated: the physically-indexed hierarchy is the only
    // consumer of data addresses, so translating here is equivalent to
    // translating per access and moves the page permutation out of the
    // replay hot loop entirely. Each unique id is decoded once; the
    // stream gathers through the plan's rank table.
    uniAddr.resize(plan.memUniverse.size());
    if (pages_.isIdentity()) {
        for (size_t u = 0; u < uniAddr.size(); ++u)
            uniAddr[u] = heap.dataAddr(plan.memUniverse[u]);
    } else {
        for (size_t u = 0; u < uniAddr.size(); ++u)
            uniAddr[u] =
                pages_.translate(heap.dataAddr(plan.memUniverse[u]));
    }
    const size_t n_mem = plan.memCount();
    dataAddr.resize(n_mem);
    const u32 *rank = plan.memRank.data();
    for (size_t j = 0; j < n_mem; ++j)
        dataAddr[j] = uniAddr[rank[j]];

    buildLineTable(plan, fetch_line_bytes);
}

LayoutTables::LayoutTables(const ReplayPlan &plan,
                           const layout::CodeLayout &code,
                           const layout::PageMap &pages,
                           u32 fetch_line_bytes, NoDataTag)
    : pages_(pages)
{
    fillCode(plan, code);
    buildLineTable(plan, fetch_line_bytes);
}

void
LayoutTables::buildLineTable(const ReplayPlan &plan, u32 fetch_line_bytes)
{
    // Pre-translate each site's fetch lines. Line membership depends
    // on where the layout put the block inside its first line, so the
    // table (counts included) is per layout.
    if (!pages_.isIdentity() && fetch_line_bytes != 0) {
        INTERF_ASSERT((fetch_line_bytes & (fetch_line_bytes - 1)) == 0);
        fetchLineBytes_ = fetch_line_bytes;
        const u64 line_mask = ~static_cast<u64>(fetch_line_bytes - 1);
        const size_t n_sites = plan.siteCount();
        siteLineStart.resize(n_sites + 1);
        u32 total = 0;
        for (size_t s = 0; s < n_sites; ++s) {
            siteLineStart[s] = total;
            Addr first = siteAddr[s] & line_mask;
            Addr last = (siteAddr[s] + plan.siteBytes[s] - 1) & line_mask;
            total += static_cast<u32>((last - first) / fetch_line_bytes) + 1;
        }
        siteLineStart[n_sites] = total;
        linePhys.resize(total);
        for (size_t s = 0; s < n_sites; ++s) {
            Addr line = siteAddr[s] & line_mask;
            for (u32 k = siteLineStart[s]; k < siteLineStart[s + 1];
                 ++k, line += fetch_line_bytes)
                linePhys[k] = pages_.translate(line);
        }
    }
}

BatchedLayoutTables::BatchedLayoutTables(
    const ReplayPlan &plan, std::vector<LayoutTables> lane_tables)
    : lanes_(static_cast<u32>(lane_tables.size())),
      laneTables_(std::move(lane_tables))
{
    INTERF_ASSERT(lanes_ >= 1 && lanes_ <= kMaxLanes);
    const size_t n_sites = plan.siteCount();
    const size_t n_mem = plan.memCount();
    for (const LayoutTables &t : laneTables_) {
        INTERF_ASSERT(t.hasData());
        INTERF_ASSERT(t.siteAddr.size() == n_sites);
        INTERF_ASSERT(t.dataAddr.size() == n_mem);
        if (!t.identityPages())
            allIdentity_ = false;
    }

    // A uniform line-table mode requires every lane to have built its
    // fetch-line table for the same line size; any lane without one
    // (identity pages skip it) drops the whole batch to the generic
    // translate-at-replay path, which is correct for any mix.
    lineTableBytes_ = laneTables_[0].fetchLineBytes();
    for (const LayoutTables &t : laneTables_)
        if (t.fetchLineBytes() != lineTableBytes_ ||
            t.siteLineStart.size() != n_sites + 1)
            lineTableBytes_ = 0;

    // Gather lane-major: the transpose costs one pass per lane here and
    // buys the kernel contiguous K-wide loads on every event.
    const u32 k = lanes_;
    const size_t n_uni = plan.memUniverse.size();
    siteAddr.resize(n_sites * k);
    branchAddr.resize(n_sites * k);
    uniAddr.resize(n_uni * k);
    dataAddr.resize(n_mem * k);
    for (u32 l = 0; l < k; ++l) {
        const LayoutTables &t = laneTables_[l];
        INTERF_ASSERT(t.uniAddr.size() == n_uni);
        for (size_t s = 0; s < n_sites; ++s) {
            siteAddr[s * k + l] = t.siteAddr[s];
            branchAddr[s * k + l] = t.branchAddr[s];
        }
        for (size_t u = 0; u < n_uni; ++u)
            uniAddr[u * k + l] = t.uniAddr[u];
        for (size_t j = 0; j < n_mem; ++j)
            dataAddr[j * k + l] = t.dataAddr[j];
    }
}

BatchedLayoutTables::BatchedLayoutTables(
    const ReplayPlan &plan, const std::vector<LaneSource> &lane_layouts,
    u32 fetch_line_bytes)
    : lanes_(static_cast<u32>(lane_layouts.size()))
{
    INTERF_ASSERT(lanes_ >= 1 && lanes_ <= kMaxLanes);
    const u32 k = lanes_;

    // Per-lane tables without data streams: code addresses, fetch-line
    // tables and the page map — everything the kernel reads per lane.
    laneTables_.reserve(k);
    for (const LaneSource &src : lane_layouts) {
        INTERF_ASSERT(src.code != nullptr && src.heap != nullptr);
        laneTables_.emplace_back(LayoutTables(
            plan, *src.code, src.pages, fetch_line_bytes,
            LayoutTables::NoDataTag{}));
        if (!src.pages.isIdentity())
            allIdentity_ = false;
    }
    const size_t n_sites = plan.siteCount();
    lineTableBytes_ = laneTables_[0].fetchLineBytes();
    for (const LayoutTables &t : laneTables_)
        if (t.fetchLineBytes() != lineTableBytes_ ||
            t.siteLineStart.size() != n_sites + 1)
            lineTableBytes_ = 0;

    siteAddr.resize(n_sites * k);
    branchAddr.resize(n_sites * k);
    for (u32 l = 0; l < k; ++l) {
        const LayoutTables &t = laneTables_[l];
        for (size_t s = 0; s < n_sites; ++s) {
            siteAddr[s * k + l] = t.siteAddr[s];
            branchAddr[s * k + l] = t.branchAddr[s];
        }
    }

    // Data addresses straight into the lane-major universe table: each
    // distinct memory id is decoded and translated exactly once per
    // lane, and no per-position stream is ever materialized (the
    // kernel gathers through plan.memRank at replay time).
    const size_t n_uni = plan.memUniverse.size();
    uniAddr.resize(n_uni * k);
    for (u32 l = 0; l < k; ++l) {
        const layout::HeapLayout &heap = *lane_layouts[l].heap;
        const layout::PageMap &pg = laneTables_[l].pages();
        if (pg.isIdentity()) {
            for (size_t u = 0; u < n_uni; ++u)
                uniAddr[u * k + l] = heap.dataAddr(plan.memUniverse[u]);
        } else {
            for (size_t u = 0; u < n_uni; ++u)
                uniAddr[u * k + l] =
                    pg.translate(heap.dataAddr(plan.memUniverse[u]));
        }
    }
}

} // namespace interf::trace
