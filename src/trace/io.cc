#include "trace/io.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/digest.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace interf::trace
{

namespace
{

constexpr u64 kMagic = 0x494e544652545243ULL; // "INTFRTRC"
constexpr u32 kVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
readPod(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
}

} // anonymous namespace

u64
programChecksum(const Program &prog)
{
    // Digest's default seed and mixer match this function's historical
    // definition, so existing trace files keep validating.
    Digest d;
    d.mix(prog.procedures().size());
    d.mix(prog.regions().size());
    for (const auto &region : prog.regions()) {
        d.mix(static_cast<u64>(region.kind));
        d.mix(region.size);
    }
    for (const auto &proc : prog.procedures()) {
        d.mix(proc.blocks.size());
        for (const auto &bb : proc.blocks) {
            d.mix(bb.bytes);
            d.mix(bb.nInsts);
            d.mix(static_cast<u64>(bb.branch.kind));
            d.mix(bb.branch.targetProc);
            d.mix(bb.branch.targetBlock);
            d.mix(bb.memRefs.size());
            for (const auto &ref : bb.memRefs) {
                d.mix(ref.regionId);
                d.mix(static_cast<u64>(ref.pattern));
            }
        }
    }
    return d.value();
}

u64
programStructureDigest(const Program &prog)
{
    Digest d;
    d.mix(prog.files().size());
    for (const auto &file : prog.files()) {
        d.mixString(file.name);
        d.mix(file.procIds.size());
        for (u32 proc_id : file.procIds)
            d.mix(proc_id);
    }
    d.mix(prog.regions().size());
    for (const auto &region : prog.regions()) {
        d.mix(region.id);
        d.mix(static_cast<u64>(region.kind));
        d.mix(region.size);
    }
    d.mix(prog.procedures().size());
    for (const auto &proc : prog.procedures()) {
        d.mixString(proc.name);
        d.mix(proc.id);
        d.mix(proc.fileIndex);
        d.mix(proc.align);
        d.mix(proc.blocks.size());
        for (const auto &bb : proc.blocks) {
            d.mix(bb.bytes);
            d.mix(bb.nInsts);
            d.mix(bb.extraExecCycles);
            const auto &br = bb.branch;
            d.mix(static_cast<u64>(br.kind));
            d.mix(static_cast<u64>(br.pattern));
            d.mixDouble(br.takenProb);
            d.mix(br.period);
            d.mix(br.historyBits);
            d.mixBool(br.dependsOnLoad);
            d.mix(br.targetProc);
            d.mix(br.targetBlock);
            d.mix(br.indirectTargets);
            d.mix(bb.memRefs.size());
            for (const auto &ref : bb.memRefs) {
                d.mix(ref.regionId);
                d.mixBool(ref.isStore);
                d.mix(static_cast<u64>(ref.pattern));
                d.mix(ref.stride);
                d.mix(ref.churnSpan);
                d.mix(ref.genId);
            }
        }
    }
    return d.value();
}

void
saveTrace(std::ostream &os, const Program &prog, const Trace &trace)
{
    writePod(os, kMagic);
    writePod(os, kVersion);
    writePod(os, programChecksum(prog));
    writePod(os, trace.instCount);
    writePod(os, trace.condBranches);
    writePod(os, trace.takenBranches);
    writePod(os, trace.loads);
    writePod(os, trace.stores);
    u64 n_events = trace.events.size();
    u64 n_mem = trace.memIds.size();
    writePod(os, n_events);
    writePod(os, n_mem);
    os.write(reinterpret_cast<const char *>(trace.events.data()),
             static_cast<std::streamsize>(n_events * sizeof(BlockEvent)));
    os.write(reinterpret_cast<const char *>(trace.memIds.data()),
             static_cast<std::streamsize>(n_mem * sizeof(u64)));
    if (!os)
        fatal("trace serialization failed (stream error)");
}

void
saveTrace(const std::string &path, const Program &prog, const Trace &trace)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    saveTrace(out, prog, trace);
}

Trace
loadTrace(std::istream &is, const Program &prog)
{
    u64 magic = 0;
    u32 version = 0;
    u64 checksum = 0;
    readPod(is, magic);
    readPod(is, version);
    readPod(is, checksum);
    if (!is || magic != kMagic)
        fatal("not a trace file (bad magic)");
    if (version != kVersion)
        fatal("unsupported trace version %u", version);
    if (checksum != programChecksum(prog))
        fatal("trace was generated from a different program "
              "(checksum mismatch)");

    Trace trace;
    readPod(is, trace.instCount);
    readPod(is, trace.condBranches);
    readPod(is, trace.takenBranches);
    readPod(is, trace.loads);
    readPod(is, trace.stores);
    u64 n_events = 0, n_mem = 0;
    readPod(is, n_events);
    readPod(is, n_mem);
    if (!is)
        fatal("truncated trace header");
    trace.events.resize(n_events);
    trace.memIds.resize(n_mem);
    is.read(reinterpret_cast<char *>(trace.events.data()),
            static_cast<std::streamsize>(n_events * sizeof(BlockEvent)));
    is.read(reinterpret_cast<char *>(trace.memIds.data()),
            static_cast<std::streamsize>(n_mem * sizeof(u64)));
    if (!is)
        fatal("truncated trace body");
    trace.validate(prog);
    return trace;
}

Trace
loadTrace(const std::string &path, const Program &prog)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s' for reading", path.c_str());
    return loadTrace(in, prog);
}

} // namespace interf::trace
