#include "trace/io.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/digest.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "verify/verify.hh"

namespace interf::trace
{

namespace
{

constexpr u64 kMagic = 0x494e544652545243ULL; // "INTFRTRC"
constexpr u32 kVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
readPod(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
}

} // anonymous namespace

u64
programChecksum(const Program &prog)
{
    // Digest's default seed and mixer match this function's historical
    // definition, so existing trace files keep validating.
    Digest d;
    d.mix(prog.procedures().size());
    d.mix(prog.regions().size());
    for (const auto &region : prog.regions()) {
        d.mix(static_cast<u64>(region.kind));
        d.mix(region.size);
    }
    for (const auto &proc : prog.procedures()) {
        d.mix(proc.blocks.size());
        for (const auto &bb : proc.blocks) {
            d.mix(bb.bytes);
            d.mix(bb.nInsts);
            d.mix(static_cast<u64>(bb.branch.kind));
            d.mix(bb.branch.targetProc);
            d.mix(bb.branch.targetBlock);
            d.mix(bb.memRefs.size());
            for (const auto &ref : bb.memRefs) {
                d.mix(ref.regionId);
                d.mix(static_cast<u64>(ref.pattern));
            }
        }
    }
    return d.value();
}

u64
programStructureDigest(const Program &prog)
{
    Digest d;
    d.mix(prog.files().size());
    for (const auto &file : prog.files()) {
        d.mixString(file.name);
        d.mix(file.procIds.size());
        for (u32 proc_id : file.procIds)
            d.mix(proc_id);
    }
    d.mix(prog.regions().size());
    for (const auto &region : prog.regions()) {
        d.mix(region.id);
        d.mix(static_cast<u64>(region.kind));
        d.mix(region.size);
    }
    d.mix(prog.procedures().size());
    for (const auto &proc : prog.procedures()) {
        d.mixString(proc.name);
        d.mix(proc.id);
        d.mix(proc.fileIndex);
        d.mix(proc.align);
        d.mix(proc.blocks.size());
        for (const auto &bb : proc.blocks) {
            d.mix(bb.bytes);
            d.mix(bb.nInsts);
            d.mix(bb.extraExecCycles);
            const auto &br = bb.branch;
            d.mix(static_cast<u64>(br.kind));
            d.mix(static_cast<u64>(br.pattern));
            d.mixDouble(br.takenProb);
            d.mix(br.period);
            d.mix(br.historyBits);
            d.mixBool(br.dependsOnLoad);
            d.mix(br.targetProc);
            d.mix(br.targetBlock);
            d.mix(br.indirectTargets);
            d.mix(bb.memRefs.size());
            for (const auto &ref : bb.memRefs) {
                d.mix(ref.regionId);
                d.mixBool(ref.isStore);
                d.mix(static_cast<u64>(ref.pattern));
                d.mix(ref.stride);
                d.mix(ref.churnSpan);
                d.mix(ref.genId);
            }
        }
    }
    return d.value();
}

void
saveTrace(std::ostream &os, const Program &prog, const Trace &trace)
{
    writePod(os, kMagic);
    writePod(os, kVersion);
    writePod(os, programChecksum(prog));
    writePod(os, trace.instCount);
    writePod(os, trace.condBranches);
    writePod(os, trace.takenBranches);
    writePod(os, trace.loads);
    writePod(os, trace.stores);
    u64 n_events = trace.events.size();
    u64 n_mem = trace.memIds.size();
    writePod(os, n_events);
    writePod(os, n_mem);
    os.write(reinterpret_cast<const char *>(trace.events.data()),
             static_cast<std::streamsize>(n_events * sizeof(BlockEvent)));
    os.write(reinterpret_cast<const char *>(trace.memIds.data()),
             static_cast<std::streamsize>(n_mem * sizeof(u64)));
    if (!os)
        fatal("trace serialization failed (stream error)");
}

void
saveTrace(const std::string &path, const Program &prog, const Trace &trace)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    saveTrace(out, prog, trace);
}

bool
tryLoadTrace(std::istream &is, const Program &prog, Trace &trace,
             std::string &error)
{
    u64 magic = 0;
    u32 version = 0;
    u64 checksum = 0;
    readPod(is, magic);
    readPod(is, version);
    readPod(is, checksum);
    if (!is || magic != kMagic) {
        error = "not a trace file (bad magic)";
        return false;
    }
    if (version != kVersion) {
        error = strprintf("unsupported trace version %u", version);
        return false;
    }
    if (checksum != programChecksum(prog)) {
        error = "trace was generated from a different program "
                "(checksum mismatch)";
        return false;
    }

    readPod(is, trace.instCount);
    readPod(is, trace.condBranches);
    readPod(is, trace.takenBranches);
    readPod(is, trace.loads);
    readPod(is, trace.stores);
    u64 n_events = 0, n_mem = 0;
    readPod(is, n_events);
    readPod(is, n_mem);
    if (!is) {
        error = "truncated trace header";
        return false;
    }

    // Bound the allocations against what the stream can actually hold,
    // so a corrupted count fails as "truncated" instead of trying to
    // resize to exabytes. Seekable streams only; pipes skip the bound
    // and rely on the read check below.
    const auto body_start = is.tellg();
    if (body_start != std::istream::pos_type(-1)) {
        is.seekg(0, std::ios::end);
        const auto stream_end = is.tellg();
        is.seekg(body_start);
        if (is && stream_end != std::istream::pos_type(-1)) {
            const u64 remaining =
                static_cast<u64>(stream_end - body_start);
            if (n_events > remaining / sizeof(BlockEvent) ||
                n_mem > (remaining - n_events * sizeof(BlockEvent)) /
                            sizeof(u64)) {
                error = "truncated trace body (event/memory counts "
                        "overrun the stream)";
                return false;
            }
        } else {
            is.clear();
            is.seekg(body_start);
        }
    }

    trace.events.resize(n_events);
    trace.memIds.resize(n_mem);
    is.read(reinterpret_cast<char *>(trace.events.data()),
            static_cast<std::streamsize>(n_events * sizeof(BlockEvent)));
    is.read(reinterpret_cast<char *>(trace.memIds.data()),
            static_cast<std::streamsize>(n_mem * sizeof(u64)));
    if (!is) {
        error = "truncated trace body";
        return false;
    }
    return true;
}

Trace
loadTrace(std::istream &is, const Program &prog)
{
    Trace trace;
    std::string error;
    if (!tryLoadTrace(is, prog, trace, error))
        fatal("%s", error.c_str());
    trace.validate(prog);
    if (verify::verifyOnTrust()) {
        auto result = verify::verifyTrace(prog, trace, "<trace>");
        if (!result.ok()) {
            for (const auto &d : result.diagnostics())
                warn("%s", d.text().c_str());
            fatal("loaded trace failed verification: %s",
                  result.summary().c_str());
        }
    }
    return trace;
}

Trace
loadTrace(const std::string &path, const Program &prog)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s' for reading", path.c_str());
    return loadTrace(in, prog);
}

} // namespace interf::trace
