/**
 * @file
 * Compiled replay plans: the trace flattened for dense replay.
 *
 * Campaigns replay one immutable (Program, Trace) pair under hundreds
 * of layouts, and the per-event cost of that replay used to be
 * dominated by layout-invariant work: the `prog.block(ev.proc,
 * ev.block)` double indirection, branch-kind dispatch over the static
 * branch record, per-reference `HeapLayout::dataAddr` decoding and
 * page translation. A ReplayPlan pays all of that exactly once per
 * campaign by pre-decoding the trace into structure-of-arrays form —
 * per-event dense site id, geometry, memory-reference counts and
 * branch flags, with every control-flow target resolved to a dense
 * *site* id (a global basic-block index).
 *
 * Per layout, the only state the replay kernel needs is a
 * LayoutTables: two flat address arrays filled from the CodeLayout in
 * one pass (`siteAddr`, `branchAddr`) plus a data-address table
 * materialized from the HeapLayout over the trace's memory-id stream
 * (pre-translated through the PageMap, whose only consumer for data
 * addresses is the physically-indexed cache hierarchy).
 *
 * The contract is strict: `Machine::replay(plan, tables)` produces a
 * RunResult bit-identical to the event-at-a-time reference loop
 * (`Machine::runReference`), for every counter and cycle count; see
 * tests/test_replay.cc. Both the plan and the tables are immutable
 * after construction and safe to share across threads.
 */

#ifndef INTERF_TRACE_REPLAY_HH
#define INTERF_TRACE_REPLAY_HH

#include <vector>

#include "layout/heap.hh"
#include "layout/linker.hh"
#include "layout/pagemap.hh"
#include "trace/trace.hh"
#include "util/types.hh"

namespace interf::trace
{

/**
 * A Trace + Program compiled into flat, replay-ready arrays.
 *
 * A *site* is a static basic block, numbered densely proc-major:
 * site(proc, block) = procFirstSite[proc] + block. Every per-event
 * control-flow reference (branch target, call fall-through, return
 * successor) is pre-resolved to a site id, so the replay kernel never
 * touches the Program.
 *
 * Build once per campaign (next to the trace); immutable afterwards
 * and safe to share across pool workers.
 */
class ReplayPlan
{
  public:
    /** @{ Per-event flag bits (see flags). */
    static constexpr u8 kTaken = 1u << 0; ///< Terminator redirected fetch.
    static constexpr u8 kCond = 1u << 1;  ///< Conditional terminator.
    static constexpr u8 kDependsOnLoad = 1u << 2; ///< Cond resolution
                                                  ///< waits on newest load.
    static constexpr u8 kReturn = 1u << 3;
    static constexpr u8 kCall = 1u << 4;
    static constexpr u8 kIndirect = 1u << 5;
    static constexpr u8 kHasBranch = 1u << 6; ///< Terminator exists.
    /** @} */

    /** Sentinel for "no site" (no fall-through, no successor). */
    static constexpr u32 kNoSite = ~u32{0};

    ReplayPlan() = default;

    /** Flatten @p trace against @p prog. The trace must validate(). */
    ReplayPlan(const Program &prog, const Trace &trace);

    /** @{ Per-event arrays, all of length eventCount(). */
    std::vector<u32> site;    ///< Dense site id of the executed block.
    std::vector<u32> bytes;   ///< Code bytes (fetch-line span).
    std::vector<u16> nInsts;  ///< Instructions retired by the block.
    std::vector<u8> extraExecCycles; ///< Intrinsic dependence stalls.
    std::vector<u16> nMem;    ///< Memory references consumed.
    std::vector<u8> flags;    ///< kTaken | kCond | ... bits.
    std::vector<u32> targetSite;  ///< Taken-redirect target site
                                  ///< (indirect choice resolved).
    std::vector<u32> rasPushSite; ///< Call fall-through site or kNoSite.
    std::vector<u32> returnSite;  ///< Return successor site or kNoSite.
    /** @} */

    /** @{ Memory stream, aligned index-for-index with Trace::memIds. */
    std::vector<u64> memId;     ///< Logical (region, offset) ids.
    std::vector<u8> memIsStore; ///< 1 for stores, 0 for loads.
    std::vector<u32> memRank;   ///< Position -> index into memUniverse.
    /** @} */

    /**
     * The trace's memId universe: each distinct id once, in first-
     * appearance order. Traces revisit the same ids many times
     * (working sets are far smaller than the access stream), so
     * per-layout address materialization decodes each unique id once
     * and gathers the stream through memRank.
     */
    std::vector<u64> memUniverse;

    /** @{ Conditional-branch substream (the pinsim replay input). */
    std::vector<u32> condSite;
    std::vector<u8> condTaken;
    /** @} */

    /** @{ Site table: dense site id <-> (proc, block). */
    std::vector<u32> siteProc;
    std::vector<u32> siteBlock;
    std::vector<u32> siteBytes;     ///< Code bytes of the site's block.
    std::vector<u32> procFirstSite; ///< proc id -> its first site id.
    /** @} */

    /** Total instructions in the trace (Trace::instCount). */
    u64 instCount = 0;

    size_t eventCount() const { return site.size(); }
    size_t memCount() const { return memId.size(); }
    size_t siteCount() const { return siteProc.size(); }

    /** Dense site id of (proc, block). */
    u32 siteOf(u32 proc_id, u32 block_id) const
    {
        return procFirstSite[proc_id] + block_id;
    }

    /** Approximate storage footprint in bytes. */
    u64 memoryBytes() const;
};

/**
 * Per-layout address tables for one replay: everything a layout
 * contributes, reduced to flat arrays indexed by site id (code) and
 * memory-stream position (data).
 *
 * Data addresses are pre-translated through the PageMap — the
 * physically-indexed hierarchy is their only consumer — while
 * instruction fetch translates at replay time because fetch lines are
 * derived per event. Immutable after construction.
 */
class LayoutTables
{
  public:
    LayoutTables() = default;

    /**
     * Code-only tables (no data addresses): enough for branch-stream
     * replay (pinsim), rejected by Machine::replay.
     */
    LayoutTables(const ReplayPlan &plan, const layout::CodeLayout &code);

    /**
     * Full tables for a (code, heap, pages) layout triple.
     *
     * @param fetch_line_bytes L1I line size used to pre-translate each
     *        site's fetch lines (only consulted for non-identity page
     *        maps). Machines with a different line size fall back to
     *        translating at replay time; results are identical.
     */
    LayoutTables(const ReplayPlan &plan, const layout::CodeLayout &code,
                 const layout::HeapLayout &heap,
                 const layout::PageMap &pages = layout::PageMap(),
                 u32 fetch_line_bytes = 64);

    /** @{ Indexed by site id. */
    std::vector<Addr> siteAddr;   ///< Block start (virtual).
    std::vector<Addr> branchAddr; ///< Terminator instruction (virtual).
    /** @} */

    /** Pre-translated data address per memory-stream position. */
    std::vector<Addr> dataAddr;

    /**
     * Pre-translated data address per memory-*universe* entry (see
     * ReplayPlan::memUniverse): dataAddr[m] == uniAddr[memRank[m]] by
     * construction. The stream table above is its gather through
     * memRank; batched replay reads this deduplicated form instead,
     * one row per distinct id rather than per access.
     */
    std::vector<Addr> uniAddr;

    /**
     * @{ Pre-translated instruction fetch lines (non-identity page
     * maps only): site s's k-th line is linePhys[siteLineStart[s] + k].
     * Line counts are per layout (they depend on the block's placement
     * within its first line), so the index is rebuilt per layout.
     */
    std::vector<Addr> linePhys;
    std::vector<u32> siteLineStart; ///< Size siteCount() + 1.
    /** @} */

    /** The page mapping used for instruction-fetch translation. */
    const layout::PageMap &pages() const { return pages_; }

    /** True when instruction fetch needs no translation. */
    bool identityPages() const { return pages_.isIdentity(); }

    /** False for code-only tables (pinsim use). */
    bool hasData() const { return hasData_; }

    /** Line size linePhys was built for (0: not built). */
    u32 fetchLineBytes() const { return fetchLineBytes_; }

  private:
    friend class BatchedLayoutTables;

    /** Tag for the code-and-lines-only constructor below. */
    struct NoDataTag
    {
    };

    /**
     * Code tables + fetch-line tables, no data-address stream: the
     * per-lane tables of BatchedLayoutTables' direct constructor,
     * which materializes data addresses once in the batched uniAddr
     * instead of per lane. hasData() stays false — Machine::replay
     * cannot run these — but the batched kernel only reads the line
     * tables and page map from them.
     */
    LayoutTables(const ReplayPlan &plan, const layout::CodeLayout &code,
                 const layout::PageMap &pages, u32 fetch_line_bytes,
                 NoDataTag);

    void fillCode(const ReplayPlan &plan, const layout::CodeLayout &code);

    /** Build linePhys/siteLineStart (non-identity page maps only). */
    void buildLineTable(const ReplayPlan &plan, u32 fetch_line_bytes);

    layout::PageMap pages_;
    bool hasData_ = false;
    u32 fetchLineBytes_ = 0;
};

/**
 * K layouts' address tables fused for one batched replay pass
 * (Machine::replayBatch): the per-layout LayoutTables gathered into
 * lane-major SoA-across-layouts arrays, so the K addresses one event
 * needs sit in contiguous memory.
 *
 * Lane-major means entry (index i, lane l) lives at [i * lanes() + l]:
 * when the batched kernel processes event e, the K site addresses (and
 * the K data addresses of each of e's memory references) are loaded
 * from one or two host cache lines instead of K scattered per-layout
 * tables. The original per-lane tables are kept too — fetch-line
 * tables are ragged per lane (line membership depends on each layout's
 * block placement) and each lane carries its own PageMap.
 *
 * Immutable after construction and safe to share across threads, like
 * the LayoutTables it is built from.
 */
class BatchedLayoutTables
{
  public:
    /** Kernel scratch arrays are sized for this many lanes. */
    static constexpr u32 kMaxLanes = 16;

    /** One lane's layout triple for the direct constructor. */
    struct LaneSource
    {
        const layout::CodeLayout *code = nullptr;
        const layout::HeapLayout *heap = nullptr;
        layout::PageMap pages;
    };

    BatchedLayoutTables() = default;

    /**
     * Fuse @p lane_tables (all built against @p plan, all with data
     * addresses) into lane-major batched arrays. 1 <= K <= kMaxLanes.
     * This path also gathers the per-position dataAddr stream, making
     * it the verification-friendly constructor; hot callers use the
     * direct constructor below.
     */
    BatchedLayoutTables(const ReplayPlan &plan,
                        std::vector<LayoutTables> lane_tables);

    /**
     * Build batched tables directly from K layout triples, skipping
     * the per-lane LayoutTables data streams entirely: data addresses
     * are materialized once into the lane-major uniAddr (one row per
     * distinct memory id — typically ~10x smaller than the access
     * stream), which is the only data table the batched kernel reads.
     * The campaign and bench batched paths use this; per-lane tables
     * still carry code addresses, fetch-line tables and page maps.
     */
    BatchedLayoutTables(const ReplayPlan &plan,
                        const std::vector<LaneSource> &lane_layouts,
                        u32 fetch_line_bytes = 64);

    /** Number of layout lanes K. */
    u32 lanes() const { return lanes_; }

    /** Lane @p l's original per-layout tables (fetch lines, pages). */
    const LayoutTables &lane(u32 l) const { return laneTables_[l]; }

    /** @{ Lane-major gathered arrays; entry (i, lane) at
     *  [i * lanes() + lane]. */
    std::vector<Addr> siteAddr;   ///< siteCount() x K block starts.
    std::vector<Addr> branchAddr; ///< siteCount() x K terminators.
    /**
     * memUniverse.size() x K pre-translated data addresses: the
     * batched kernel resolves memory reference m of lane l as
     * uniAddr[memRank[m] * K + l]. Indexing by universe entry instead
     * of stream position keeps the table at one row per distinct id.
     */
    std::vector<Addr> uniAddr;
    /**
     * memCount() x K pre-translated, by stream position:
     * dataAddr[m * K + l] == uniAddr[memRank[m] * K + l]. Only the
     * fuse-from-LayoutTables constructor materializes it (tests and
     * verification read it); the direct constructor leaves it empty
     * since the kernel reads uniAddr.
     */
    std::vector<Addr> dataAddr;
    /** @} */

    /** True when every lane uses the identity page mapping. */
    bool allIdentityPages() const { return allIdentity_; }

    /**
     * True when every lane pre-translated its fetch lines for
     * @p line_bytes (the batched kernel's line-table fast path).
     */
    bool allLineTablesFor(u32 line_bytes) const
    {
        return lineTableBytes_ != 0 && lineTableBytes_ == line_bytes;
    }

  private:
    u32 lanes_ = 0;
    bool allIdentity_ = true;
    u32 lineTableBytes_ = 0; ///< Common fetchLineBytes, 0 if mixed/none.
    std::vector<LayoutTables> laneTables_;
};

} // namespace interf::trace

#endif // INTERF_TRACE_REPLAY_HH
