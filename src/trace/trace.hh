/**
 * @file
 * Dynamic execution traces.
 *
 * A Trace is the layout-invariant record of one program execution: the
 * sequence of basic blocks executed (with each terminating branch's
 * outcome) plus the stream of logical data ids touched by loads and
 * stores. Running the same Trace under two different layouts models the
 * paper's semantically-equivalent executables: identical retired
 * instructions, different addresses.
 */

#ifndef INTERF_TRACE_TRACE_HH
#define INTERF_TRACE_TRACE_HH

#include <vector>

#include "trace/program.hh"
#include "util/types.hh"

namespace interf::trace
{

/** One executed basic block. Memory ids are consumed from the shared
 *  stream in program order (block.memRefs order). */
struct BlockEvent
{
    u16 proc = 0;
    u16 block = 0;
    u8 taken = 0; ///< 1 if the terminator redirected fetch.
    u8 indirectChoice = 0; ///< For IndirectBranch: chosen target index.
    u16 pad = 0;
};

static_assert(sizeof(BlockEvent) == 8, "BlockEvent should stay compact");

/** The dynamic trace of one complete run. */
class Trace
{
  public:
    /** Executed blocks in order. */
    std::vector<BlockEvent> events;

    /** Logical data ids consumed by loads/stores across all events. */
    std::vector<u64> memIds;

    /** @{ Aggregate counts, filled by the generator. */
    u64 instCount = 0;
    u64 condBranches = 0;
    u64 takenBranches = 0;
    u64 loads = 0;
    u64 stores = 0;
    /** @} */

    /** Reserve storage for an expected instruction budget. */
    void reserveFor(u64 expected_insts);

    /** Recompute the aggregate counts from the event stream. */
    void recount(const Program &prog);

    /**
     * Verify internal consistency against the static program: event ids
     * in range, memory-id stream length matches the blocks' static
     * reference counts. Panics on violation.
     */
    void validate(const Program &prog) const;

    /** Approximate storage footprint in bytes. */
    u64 memoryBytes() const;
};

} // namespace interf::trace

#endif // INTERF_TRACE_TRACE_HH
