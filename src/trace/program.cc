#include "trace/program.hh"

#include <vector>

#include "util/logging.hh"

namespace interf::trace
{

u16
BasicBlock::loads() const
{
    u16 n = 0;
    for (const auto &m : memRefs)
        if (!m.isStore)
            ++n;
    return n;
}

u16
BasicBlock::stores() const
{
    u16 n = 0;
    for (const auto &m : memRefs)
        if (m.isStore)
            ++n;
    return n;
}

u32
Procedure::bytes() const
{
    u32 total = 0;
    for (const auto &b : blocks)
        total += b.bytes;
    return total;
}

u32
Program::addProcedure(Procedure proc)
{
    proc.id = static_cast<u32>(procs_.size());
    procs_.push_back(std::move(proc));
    return procs_.back().id;
}

u32
Program::addFile(const std::string &name)
{
    files_.push_back({name, {}});
    return static_cast<u32>(files_.size() - 1);
}

void
Program::placeInFile(u32 file_index, u32 proc_id)
{
    INTERF_ASSERT(file_index < files_.size());
    INTERF_ASSERT(proc_id < procs_.size());
    files_[file_index].procIds.push_back(proc_id);
    procs_[proc_id].fileIndex = file_index;
}

u32
Program::addRegion(RegionKind kind, u64 size)
{
    DataRegion region;
    region.id = static_cast<u32>(regions_.size());
    region.kind = kind;
    region.size = size;
    regions_.push_back(region);
    return region.id;
}

const Procedure &
Program::proc(u32 id) const
{
    INTERF_ASSERT(id < procs_.size());
    return procs_[id];
}

const BasicBlock &
Program::block(u32 proc_id, u32 block_id) const
{
    const Procedure &p = proc(proc_id);
    INTERF_ASSERT(block_id < p.blocks.size());
    return p.blocks[block_id];
}

const DataRegion &
Program::region(u32 id) const
{
    INTERF_ASSERT(id < regions_.size());
    return regions_[id];
}

u64
Program::totalCodeBytes() const
{
    u64 total = 0;
    for (const auto &p : procs_)
        total += p.bytes();
    return total;
}

u64
Program::totalBlocks() const
{
    u64 total = 0;
    for (const auto &p : procs_)
        total += p.blocks.size();
    return total;
}

u64
Program::condBranchSites() const
{
    u64 total = 0;
    for (const auto &p : procs_)
        for (const auto &b : p.blocks)
            if (b.branch.isConditional())
                ++total;
    return total;
}

void
Program::validate() const
{
    std::vector<u8> seen(procs_.size(), 0);
    for (const auto &file : files_) {
        for (u32 pid : file.procIds) {
            INTERF_ASSERT(pid < procs_.size());
            if (seen[pid])
                panic("procedure %u appears in multiple object files", pid);
            seen[pid] = 1;
        }
    }
    for (size_t i = 0; i < seen.size(); ++i)
        if (!seen[i])
            panic("procedure %zu is not in any object file", i);

    for (const auto &p : procs_) {
        INTERF_ASSERT(!p.blocks.empty());
        INTERF_ASSERT(p.align > 0 && (p.align & (p.align - 1)) == 0);
        for (const auto &b : p.blocks) {
            INTERF_ASSERT(b.bytes > 0);
            INTERF_ASSERT(b.nInsts > 0);
            const StaticBranch &br = b.branch;
            if (!br.exists())
                continue;
            INTERF_ASSERT(br.targetProc < procs_.size());
            const Procedure &tp = procs_[br.targetProc];
            if (br.kind == OpClass::IndirectBranch) {
                INTERF_ASSERT(br.indirectTargets > 0);
                INTERF_ASSERT(br.targetBlock +
                                  static_cast<u32>(br.indirectTargets) <=
                              tp.blocks.size());
            } else if (br.kind != OpClass::Return) {
                INTERF_ASSERT(br.targetBlock < tp.blocks.size());
            }
            if (br.isConditional())
                INTERF_ASSERT(br.pattern != BranchPattern::None);
        }
        for (const auto &b : p.blocks)
            for (const auto &m : b.memRefs)
                INTERF_ASSERT(m.regionId < regions_.size());
    }
}

} // namespace interf::trace
