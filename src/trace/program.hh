/**
 * @file
 * Static program representation: the workload IR.
 *
 * The paper perturbs real SPEC executables; we model the parts of an
 * executable that program interferometry actually manipulates and
 * observes:
 *
 *   - a Program is a set of ObjectFiles, each containing Procedures,
 *     each a sequence of BasicBlocks with byte sizes, instruction
 *     counts, memory references and a terminating branch;
 *   - the *authored* order of procedures within files and of files
 *     within the link line is what the Linker permutes (Section 5.3);
 *   - DataRegions describe global/heap/stack storage whose placement the
 *     randomizing allocator perturbs (Section 1.3).
 *
 * Semantics (the dynamic trace) never depend on layout; only addresses
 * do. That invariant is the core of interferometry.
 */

#ifndef INTERF_TRACE_PROGRAM_HH
#define INTERF_TRACE_PROGRAM_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace interf::trace
{

/** Instruction classes relevant to the timing and predictor models. */
enum class OpClass : u8 {
    IntAlu,
    FpAlu,
    Load,
    Store,
    CondBranch,
    UncondBranch,
    IndirectBranch,
    Call,
    Return,
};

/** Outcome-generation pattern of a conditional branch site. */
enum class BranchPattern : u8 {
    None,          ///< Block has no conditional terminator.
    Biased,        ///< Taken with a fixed per-site probability.
    Periodic,      ///< Loop-style: taken (period-1) times, then not.
    HistoryParity, ///< Outcome = parity of the last h global outcomes.
    Random,        ///< Unpredictable 50/50.
};

/**
 * Static description of a block's terminating branch. kind ==
 * OpClass::IntAlu (sentinel) means the block falls through with no
 * branch.
 */
struct StaticBranch
{
    OpClass kind = OpClass::IntAlu; ///< Branch class or IntAlu sentinel.
    BranchPattern pattern = BranchPattern::None;
    float takenProb = 0.5f; ///< For Biased.
    u16 period = 0;         ///< For Periodic.
    u8 historyBits = 0;     ///< For HistoryParity.
    /**
     * When true the branch's condition depends on the most recent load
     * in the block, so its resolution waits for that load's data —
     * the mechanism behind the large Table-1 slopes (zeusmp, GemsFDTD).
     */
    bool dependsOnLoad = false;
    u16 targetProc = 0;  ///< Callee proc (Call) or target proc.
    u16 targetBlock = 0; ///< Taken-path block within targetProc.
    u8 indirectTargets = 0; ///< For IndirectBranch: number of targets
                            ///< (blocks targetBlock..targetBlock+n-1).

    bool exists() const { return kind != OpClass::IntAlu; }
    bool isConditional() const { return kind == OpClass::CondBranch; }
};

/** Dynamic-address pattern of a static memory reference. */
enum class MemPattern : u8 {
    Stride, ///< Blocked sequential walk with a fixed byte stride.
    Random, ///< Uniform over the whole region (streaming/cold).
    Hot,    ///< Concentrated on a small hot subset of the region.
    HotWide,///< Concentrated on half the region: builds recurring
            ///< working sets near L2 capacity, where physical page
            ///< placement decides which sets thrash.
    Churn,  ///< Uniform over an L1-defeating but L2-resident window.
};

/** One static load or store inside a basic block. */
struct MemRef
{
    u32 regionId = 0;
    bool isStore = false;
    MemPattern pattern = MemPattern::Stride;
    u32 stride = 8;  ///< Byte stride for MemPattern::Stride.
    u32 churnSpan = 96 << 10; ///< Window bytes for MemPattern::Churn.
    u32 genId = 0;   ///< Index of this site's dynamic position state.
};

/** A straight-line code block ending in (at most) one branch. */
struct BasicBlock
{
    u32 bytes = 0;          ///< Code size in bytes.
    u16 nInsts = 0;         ///< Instructions, including the branch.
    u8 extraExecCycles = 0; ///< Intrinsic dependence-chain stall cycles
                            ///< per execution beyond width-limited issue.
    StaticBranch branch;
    std::vector<MemRef> memRefs; ///< Loads/stores in program order.

    u16 loads() const;
    u16 stores() const;
};

/** A procedure: an aligned, contiguous run of basic blocks. */
struct Procedure
{
    std::string name;
    u32 id = 0;        ///< Global procedure id (index in Program).
    u32 fileIndex = 0; ///< Object file this procedure is authored in.
    u32 align = 16;    ///< Linker alignment in bytes.
    std::vector<BasicBlock> blocks;

    /** Total code bytes (blocks are contiguous, no padding inside). */
    u32 bytes() const;
};

/** An object file: the unit the linker reorders on the command line. */
struct ObjectFile
{
    std::string name;
    std::vector<u32> procIds; ///< Authored order of procedures.
};

/** Kinds of data storage; only Heap placement is randomized. */
enum class RegionKind : u8 { Global, Heap, Stack };

/** A contiguous logical data region (array, heap arena, stack frame). */
struct DataRegion
{
    u32 id = 0;
    RegionKind kind = RegionKind::Global;
    u64 size = 0; ///< Bytes.
};

/**
 * Encode a (region, offset) pair as the 64-bit logical data id stored in
 * traces. Layout objects map logical ids to virtual addresses.
 */
constexpr u64
makeDataId(u32 region, u64 offset)
{
    return (static_cast<u64>(region) << 40) | (offset & ((1ULL << 40) - 1));
}

/** Extract the region id from a logical data id. */
constexpr u32
dataIdRegion(u64 id)
{
    return static_cast<u32>(id >> 40);
}

/** Extract the intra-region offset from a logical data id. */
constexpr u64
dataIdOffset(u64 id)
{
    return id & ((1ULL << 40) - 1);
}

/**
 * A complete static program: procedures, their grouping into object
 * files, and the data regions the code touches.
 */
class Program
{
  public:
    /** Append a procedure; sets its id and returns it. */
    u32 addProcedure(Procedure proc);

    /** Append an (empty) object file; returns its index. */
    u32 addFile(const std::string &name);

    /** Record that procedure procId is authored in file fileIndex. */
    void placeInFile(u32 file_index, u32 proc_id);

    /** Append a data region; sets its id and returns it. */
    u32 addRegion(RegionKind kind, u64 size);

    /** @{ Read access. */
    const std::vector<Procedure> &procedures() const { return procs_; }
    const std::vector<ObjectFile> &files() const { return files_; }
    const std::vector<DataRegion> &regions() const { return regions_; }
    const Procedure &proc(u32 id) const;
    const BasicBlock &block(u32 proc_id, u32 block_id) const;
    const DataRegion &region(u32 id) const;
    /** @} */

    /** Total code bytes across all procedures (without alignment). */
    u64 totalCodeBytes() const;

    /** Total number of basic blocks. */
    u64 totalBlocks() const;

    /** Number of static conditional branch sites. */
    u64 condBranchSites() const;

    /**
     * Sanity-check internal consistency (targets in range, files cover
     * all procedures exactly once); panics on violation.
     */
    void validate() const;

  private:
    std::vector<Procedure> procs_;
    std::vector<ObjectFile> files_;
    std::vector<DataRegion> regions_;
};

} // namespace interf::trace

#endif // INTERF_TRACE_PROGRAM_HH
