#include "trace/trace.hh"

#include "util/logging.hh"

namespace interf::trace
{

void
Trace::reserveFor(u64 expected_insts)
{
    // Typical synthetic blocks average ~5 instructions and ~1 memory
    // reference; reserving avoids reallocation churn during generation.
    events.reserve(expected_insts / 4);
    memIds.reserve(expected_insts / 3);
}

void
Trace::recount(const Program &prog)
{
    instCount = 0;
    condBranches = 0;
    takenBranches = 0;
    loads = 0;
    stores = 0;
    for (const auto &ev : events) {
        const BasicBlock &bb = prog.block(ev.proc, ev.block);
        instCount += bb.nInsts;
        loads += bb.loads();
        stores += bb.stores();
        if (bb.branch.isConditional())
            ++condBranches;
        if (ev.taken)
            ++takenBranches;
    }
}

void
Trace::validate(const Program &prog) const
{
    u64 expected_mem = 0;
    for (const auto &ev : events) {
        INTERF_ASSERT(ev.proc < prog.procedures().size());
        const Procedure &p = prog.proc(ev.proc);
        INTERF_ASSERT(ev.block < p.blocks.size());
        const BasicBlock &bb = p.blocks[ev.block];
        expected_mem += bb.memRefs.size();
        if (!bb.branch.exists())
            INTERF_ASSERT(!ev.taken);
        if (bb.branch.kind == OpClass::IndirectBranch)
            INTERF_ASSERT(ev.indirectChoice < bb.branch.indirectTargets);
    }
    if (expected_mem != memIds.size())
        panic("trace memory stream has %zu ids, blocks reference %llu",
              memIds.size(),
              static_cast<unsigned long long>(expected_mem));
    for (u64 id : memIds) {
        u32 region = dataIdRegion(id);
        INTERF_ASSERT(region < prog.regions().size());
        INTERF_ASSERT(dataIdOffset(id) < prog.region(region).size);
    }
}

u64
Trace::memoryBytes() const
{
    return events.size() * sizeof(BlockEvent) + memIds.size() * sizeof(u64);
}

} // namespace interf::trace
