#include "trace/generator.hh"

#include <algorithm>

#include "util/logging.hh"

namespace interf::trace
{

TraceGenerator::TraceGenerator(const Program &prog, u64 seed,
                               GeneratorLimits limits)
    : prog_(prog), seed_(seed), limits_(limits), rng_(seed)
{
    // Index every block so per-site dynamic state is a flat array.
    siteIndexBase_.resize(prog.procedures().size());
    u32 next = 0;
    for (size_t p = 0; p < prog.procedures().size(); ++p) {
        siteIndexBase_[p] = next;
        next += static_cast<u32>(prog.procedures()[p].blocks.size());
    }
    siteState_.resize(next);

    u32 max_gen = 0;
    for (const auto &proc : prog.procedures())
        for (const auto &bb : proc.blocks)
            for (const auto &m : bb.memRefs)
                max_gen = std::max(max_gen, m.genId + 1);
    memPos_.resize(max_gen, 0);
    reset();
}

void
TraceGenerator::reset()
{
    rng_ = Rng(seed_);
    history_ = 0;
    std::fill(siteState_.begin(), siteState_.end(), SiteState());
    std::fill(memPos_.begin(), memPos_.end(), u64{0});
}

void
TraceGenerator::pushHistory(bool taken)
{
    history_ = (history_ << 1) | (taken ? 1u : 0u);
}

bool
TraceGenerator::decideConditional(u32 proc_id, u32 block_id,
                                  const StaticBranch &br)
{
    SiteState &st = siteState_[siteIndexBase_[proc_id] + block_id];
    bool taken = false;
    switch (br.pattern) {
      case BranchPattern::Biased:
        taken = rng_.bernoulli(br.takenProb);
        break;
      case BranchPattern::Periodic:
        INTERF_ASSERT(br.period >= 2);
        ++st.periodicPos;
        taken = (st.periodicPos % br.period) != 0;
        break;
      case BranchPattern::HistoryParity: {
        u64 mask = (br.historyBits >= 64)
                       ? ~u64{0}
                       : ((u64{1} << br.historyBits) - 1);
        taken = (__builtin_parityll(history_ & mask) != 0);
        break;
      }
      case BranchPattern::Random:
        taken = rng_.bernoulli(0.5);
        break;
      case BranchPattern::None:
        panic("conditional branch with pattern None at proc %u block %u",
              proc_id, block_id);
    }
    // Safety valve against unbounded loops (e.g. a HistoryParity
    // back-edge stuck at taken): force an exit after too many
    // consecutive taken outcomes.
    if (taken) {
        if (++st.consecTaken >= limits_.maxLoopIterations) {
            taken = false;
            st.consecTaken = 0;
        }
    } else {
        st.consecTaken = 0;
    }
    return taken;
}

void
TraceGenerator::emitMemRefs(const BasicBlock &bb, Trace &trace)
{
    for (const auto &m : bb.memRefs) {
        const DataRegion &region = prog_.region(m.regionId);
        u64 slots = std::max<u64>(region.size / 8, 1);
        u64 offset = 0;
        switch (m.pattern) {
          case MemPattern::Stride: {
            // Strided walks tile the region in bounded windows (like
            // blocked array code): laps complete quickly, so the
            // references are periodic rather than endlessly compulsory.
            constexpr u64 stride_window = 32 << 10;
            u64 span = std::min<u64>(region.size, stride_window);
            u64 pos = memPos_[m.genId]++;
            offset = (pos * m.stride) % span;
            offset &= ~u64{7};
            break;
          }
          case MemPattern::Random:
            offset = rng_.uniformInt(slots) * 8;
            break;
          case MemPattern::Churn: {
            // Uniform within a bounded window: sized to defeat the L1
            // but fit the L2 by default; profiles may widen it past L2
            // capacity (pointer-chasing over a big working set).
            u64 span_slots =
                std::min<u64>(std::max<u64>(m.churnSpan / 8, 8), slots);
            offset = rng_.uniformInt(span_slots) * 8;
            break;
          }
          case MemPattern::Hot:
          case MemPattern::HotWide: {
            // Hot concentrates on a small subset; HotWide on half the
            // region (recurring working sets near L2 capacity). The 3%
            // spill over the whole region models occasional cold
            // touches without coupon-collector-dominated miss counts.
            u64 divisor = m.pattern == MemPattern::Hot ? 16 : 2;
            u64 hot_slots = std::max<u64>(slots / divisor, 8);
            hot_slots = std::min(hot_slots, slots);
            if (rng_.bernoulli(0.97))
                offset = rng_.uniformInt(hot_slots) * 8;
            else
                offset = rng_.uniformInt(slots) * 8;
            break;
          }
        }
        if (offset >= region.size)
            offset = region.size - 8;
        trace.memIds.push_back(makeDataId(m.regionId, offset));
        if (m.isStore)
            ++trace.stores;
        else
            ++trace.loads;
    }
}

void
TraceGenerator::runMain(Trace &trace)
{
    struct Frame
    {
        u32 proc;
        u32 block;
    };
    std::vector<Frame> stack;
    stack.reserve(limits_.maxCallDepth);

    u32 proc = 0;
    u32 block = 0;
    u64 events = 0;

    for (;;) {
        const BasicBlock &bb = prog_.block(proc, block);
        trace.instCount += bb.nInsts;
        emitMemRefs(bb, trace);

        const StaticBranch &br = bb.branch;
        u8 taken = 0;
        u8 indirect_choice = 0;
        u32 nproc = proc;
        u32 nblock = block + 1;
        bool finished = false;

        switch (br.kind) {
          case OpClass::IntAlu: // no terminator: fall through
            if (nblock >= prog_.proc(proc).blocks.size()) {
                // Defensive implicit return; builders always end
                // procedures with an explicit Return.
                if (stack.empty()) {
                    finished = true;
                } else {
                    nproc = stack.back().proc;
                    nblock = stack.back().block;
                    stack.pop_back();
                }
            }
            break;
          case OpClass::CondBranch: {
            ++trace.condBranches;
            bool t = decideConditional(proc, block, br);
            pushHistory(t);
            if (t) {
                taken = 1;
                nproc = br.targetProc;
                nblock = br.targetBlock;
            }
            break;
          }
          case OpClass::UncondBranch:
            taken = 1;
            nproc = br.targetProc;
            nblock = br.targetBlock;
            break;
          case OpClass::Call:
            taken = 1;
            if (stack.size() < limits_.maxCallDepth &&
                nblock < prog_.proc(proc).blocks.size()) {
                stack.push_back({proc, nblock});
                nproc = br.targetProc;
                nblock = 0;
            }
            // else: treat as a skipped call; fall through to next block
            break;
          case OpClass::Return:
            taken = 1;
            if (stack.empty()) {
                finished = true;
            } else {
                nproc = stack.back().proc;
                nblock = stack.back().block;
                stack.pop_back();
            }
            break;
          case OpClass::IndirectBranch: {
            taken = 1;
            u32 n = br.indirectTargets;
            INTERF_ASSERT(n > 0);
            // Skewed target distribution: each site favours one target
            // (derived from its static identity) with geometric decay
            // over the rest, like virtual-dispatch call sites.
            u64 favourite = (siteIndexBase_[proc] + block) % n;
            u64 g = rng_.geometric(0.6);
            indirect_choice = static_cast<u8>((favourite + g) % n);
            nproc = br.targetProc;
            nblock = br.targetBlock + indirect_choice;
            break;
          }
          case OpClass::Load:
          case OpClass::Store:
          case OpClass::FpAlu:
            panic("invalid terminator kind %d", static_cast<int>(br.kind));
        }
        if (taken)
            ++trace.takenBranches;

        trace.events.push_back({static_cast<u16>(proc),
                                static_cast<u16>(block), taken,
                                indirect_choice, 0});
        if (finished)
            return;
        proc = nproc;
        block = nblock;

        if (++events >= limits_.maxEventsPerMain) {
            warn("trace generation hit the per-main event limit; "
                 "truncating this invocation");
            return;
        }
    }
}

u64
TraceGenerator::instructionsPerMainCall()
{
    if (cachedInstsPerMain_ == 0) {
        reset();
        Trace probe;
        runMain(probe);
        cachedInstsPerMain_ = probe.instCount;
        INTERF_ASSERT(cachedInstsPerMain_ > 0);
    }
    return cachedInstsPerMain_;
}

Trace
TraceGenerator::makeTrace(u64 inst_budget)
{
    reset();
    Trace trace;
    trace.reserveFor(std::max(inst_budget, u64{1024}));
    // Whole main() invocations only: the Camino-style run-length rule
    // guarantees every layout retires the same instruction count.
    while (trace.instCount < inst_budget)
        runMain(trace);
    return trace;
}

} // namespace interf::trace
