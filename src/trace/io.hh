/**
 * @file
 * Binary trace serialization.
 *
 * Traces are deterministic given (profile, seed, budget), but long ones
 * take time to generate; saving them lets harnesses snapshot a
 * campaign's exact input or move it between machines. The format embeds
 * a structural checksum of the program so a trace cannot silently be
 * replayed against the wrong binary — the interferometry invariant
 * (same semantics, different addresses) only holds for the program the
 * trace was generated from.
 */

#ifndef INTERF_TRACE_IO_HH
#define INTERF_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/program.hh"
#include "trace/trace.hh"

namespace interf::trace
{

/**
 * Structural checksum of a program (procedures, block geometry, branch
 * sites, memory sites). Identical programs hash identically on any
 * platform.
 *
 * This is the historical digest embedded in trace files; it does NOT
 * cover every Program field (branch behaviour parameters, memory
 * strides, alignment, authored link order...). Anything that must
 * distinguish programs by *full* structure — notably the campaign
 * artifact store's key — needs programStructureDigest() instead.
 */
u64 programChecksum(const Program &prog);

/**
 * Exhaustive structural digest of a program: every field of every
 * region, object file (including authored order), procedure, block,
 * branch site and memory reference site. Two programs digest equal iff
 * they are field-for-field identical, so any knob that can change the
 * trace or the layout — branch bias, load dependence, strides, churn
 * windows, alignment, file grouping — changes the digest.
 *
 * Kept separate from programChecksum() so existing trace files keep
 * validating; new binding uses (e.g. store keys) should prefer this.
 */
u64 programStructureDigest(const Program &prog);

/** Serialize a trace to a stream. */
void saveTrace(std::ostream &os, const Program &prog, const Trace &trace);

/** Serialize a trace to a file; fatal() on I/O failure. */
void saveTrace(const std::string &path, const Program &prog,
               const Trace &trace);

/**
 * Deserialize a trace from a stream; fatal() on corrupt input or on a
 * program-checksum mismatch.
 */
Trace loadTrace(std::istream &is, const Program &prog);

/**
 * Non-fatal core of loadTrace(): deserialize a trace from a stream,
 * returning false (with the would-be fatal() message in @p error)
 * instead of exiting on bad magic, version or checksum mismatch,
 * truncation, or an event/memory count that overruns the stream.
 * Performs no semantic validation of the decoded events — that is
 * TraceVerifier's job (verify/verify.hh).
 */
bool tryLoadTrace(std::istream &is, const Program &prog, Trace &trace,
                  std::string &error);

/** Deserialize a trace from a file; fatal() on failure. */
Trace loadTrace(const std::string &path, const Program &prog);

} // namespace interf::trace

#endif // INTERF_TRACE_IO_HH
