/**
 * @file
 * Dynamic trace generation: a structured-CFG interpreter.
 *
 * The generator walks a Program the way the benchmark would execute:
 * main (procedure 0) is invoked repeatedly; inside a procedure, each
 * block's terminating branch decides the successor (backward conditional
 * = loop, forward conditional = if, call/return across procedures,
 * indirect = switch dispatch). Branch outcomes come from per-site
 * pattern state machines and a seeded Rng, so the same seed always
 * yields the same trace.
 *
 * Run-length control models the paper's Camino instrumentation
 * (Section 5.7): the first "profiling pass" measures instructions per
 * main invocation, then the "instrumented" run executes whole main
 * invocations until the instruction budget is met — every layout of a
 * benchmark therefore retires exactly the same instructions.
 */

#ifndef INTERF_TRACE_GENERATOR_HH
#define INTERF_TRACE_GENERATOR_HH

#include <vector>

#include "trace/program.hh"
#include "trace/trace.hh"
#include "util/random.hh"

namespace interf::trace
{

/** Tunable safety limits for the interpreter. */
struct GeneratorLimits
{
    u32 maxCallDepth = 64;      ///< Calls deeper than this fall through.
    u64 maxLoopIterations = 1u << 16; ///< Per loop entry, then forced exit.
    u64 maxEventsPerMain = 1u << 26;  ///< Hard stop for runaway walks.
};

/**
 * Generates dynamic traces from a static Program.
 *
 * The generator owns the per-site dynamic state (periodic-branch
 * counters, memory-walk positions, the global outcome history) so that
 * repeated generate() calls continue the program's behaviour stream,
 * while makeTrace() resets everything for a fresh, reproducible run.
 */
class TraceGenerator
{
  public:
    /**
     * @param prog The static program; must outlive the generator.
     * @param seed Behaviour seed; fully determines the trace.
     */
    TraceGenerator(const Program &prog, u64 seed,
                   GeneratorLimits limits = GeneratorLimits());

    /**
     * Produce a fresh trace of at least inst_budget instructions,
     * rounded up to a whole main() invocation (the Camino run-length
     * rule). State is reset first, so equal seeds give equal traces.
     */
    Trace makeTrace(u64 inst_budget);

    /** Instructions retired by a single main() invocation (measured). */
    u64 instructionsPerMainCall();

  private:
    struct SiteState
    {
        u32 periodicPos = 0;  ///< Execution count for Periodic sites.
        u64 consecTaken = 0;  ///< Consecutive taken outcomes (loop guard).
    };

    void reset();
    void runMain(Trace &trace);
    bool decideConditional(u32 proc_id, u32 block_id,
                           const StaticBranch &br);
    void pushHistory(bool taken);
    void emitMemRefs(const BasicBlock &bb, Trace &trace);

    const Program &prog_;
    u64 seed_;
    GeneratorLimits limits_;
    Rng rng_;
    u64 history_ = 0; ///< Global branch-outcome history (bit 0 newest).
    std::vector<SiteState> siteState_;  ///< Per cond-branch site.
    std::vector<u64> memPos_;           ///< Per memory-site walk state.
    std::vector<u32> siteIndex_;        ///< (proc, block) -> site slot.
    std::vector<u32> siteIndexBase_;    ///< Per-proc offset into the map.
    u64 cachedInstsPerMain_ = 0;
};

} // namespace interf::trace

#endif // INTERF_TRACE_GENERATOR_HH
