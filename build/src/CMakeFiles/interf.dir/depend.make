# Empty dependencies file for interf.
# This may be replaced when dependencies are built.
