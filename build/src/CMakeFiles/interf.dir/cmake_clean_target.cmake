file(REMOVE_RECURSE
  "libinterf.a"
)
