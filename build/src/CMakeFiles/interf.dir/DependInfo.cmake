
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpred/bimodal.cc" "src/CMakeFiles/interf.dir/bpred/bimodal.cc.o" "gcc" "src/CMakeFiles/interf.dir/bpred/bimodal.cc.o.d"
  "/root/repo/src/bpred/btb.cc" "src/CMakeFiles/interf.dir/bpred/btb.cc.o" "gcc" "src/CMakeFiles/interf.dir/bpred/btb.cc.o.d"
  "/root/repo/src/bpred/factory.cc" "src/CMakeFiles/interf.dir/bpred/factory.cc.o" "gcc" "src/CMakeFiles/interf.dir/bpred/factory.cc.o.d"
  "/root/repo/src/bpred/history.cc" "src/CMakeFiles/interf.dir/bpred/history.cc.o" "gcc" "src/CMakeFiles/interf.dir/bpred/history.cc.o.d"
  "/root/repo/src/bpred/hybrid.cc" "src/CMakeFiles/interf.dir/bpred/hybrid.cc.o" "gcc" "src/CMakeFiles/interf.dir/bpred/hybrid.cc.o.d"
  "/root/repo/src/bpred/ltage.cc" "src/CMakeFiles/interf.dir/bpred/ltage.cc.o" "gcc" "src/CMakeFiles/interf.dir/bpred/ltage.cc.o.d"
  "/root/repo/src/bpred/perceptron.cc" "src/CMakeFiles/interf.dir/bpred/perceptron.cc.o" "gcc" "src/CMakeFiles/interf.dir/bpred/perceptron.cc.o.d"
  "/root/repo/src/bpred/perfect.cc" "src/CMakeFiles/interf.dir/bpred/perfect.cc.o" "gcc" "src/CMakeFiles/interf.dir/bpred/perfect.cc.o.d"
  "/root/repo/src/bpred/ras.cc" "src/CMakeFiles/interf.dir/bpred/ras.cc.o" "gcc" "src/CMakeFiles/interf.dir/bpred/ras.cc.o.d"
  "/root/repo/src/bpred/twolevel.cc" "src/CMakeFiles/interf.dir/bpred/twolevel.cc.o" "gcc" "src/CMakeFiles/interf.dir/bpred/twolevel.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/interf.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/interf.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/interf.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/interf.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/interf.dir/core/config.cc.o" "gcc" "src/CMakeFiles/interf.dir/core/config.cc.o.d"
  "/root/repo/src/core/noise.cc" "src/CMakeFiles/interf.dir/core/noise.cc.o" "gcc" "src/CMakeFiles/interf.dir/core/noise.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/CMakeFiles/interf.dir/core/runner.cc.o" "gcc" "src/CMakeFiles/interf.dir/core/runner.cc.o.d"
  "/root/repo/src/core/timing.cc" "src/CMakeFiles/interf.dir/core/timing.cc.o" "gcc" "src/CMakeFiles/interf.dir/core/timing.cc.o.d"
  "/root/repo/src/exec/threadpool.cc" "src/CMakeFiles/interf.dir/exec/threadpool.cc.o" "gcc" "src/CMakeFiles/interf.dir/exec/threadpool.cc.o.d"
  "/root/repo/src/interferometry/campaign.cc" "src/CMakeFiles/interf.dir/interferometry/campaign.cc.o" "gcc" "src/CMakeFiles/interf.dir/interferometry/campaign.cc.o.d"
  "/root/repo/src/interferometry/model.cc" "src/CMakeFiles/interf.dir/interferometry/model.cc.o" "gcc" "src/CMakeFiles/interf.dir/interferometry/model.cc.o.d"
  "/root/repo/src/interferometry/predict.cc" "src/CMakeFiles/interf.dir/interferometry/predict.cc.o" "gcc" "src/CMakeFiles/interf.dir/interferometry/predict.cc.o.d"
  "/root/repo/src/interferometry/report.cc" "src/CMakeFiles/interf.dir/interferometry/report.cc.o" "gcc" "src/CMakeFiles/interf.dir/interferometry/report.cc.o.d"
  "/root/repo/src/layout/heap.cc" "src/CMakeFiles/interf.dir/layout/heap.cc.o" "gcc" "src/CMakeFiles/interf.dir/layout/heap.cc.o.d"
  "/root/repo/src/layout/linker.cc" "src/CMakeFiles/interf.dir/layout/linker.cc.o" "gcc" "src/CMakeFiles/interf.dir/layout/linker.cc.o.d"
  "/root/repo/src/layout/pagemap.cc" "src/CMakeFiles/interf.dir/layout/pagemap.cc.o" "gcc" "src/CMakeFiles/interf.dir/layout/pagemap.cc.o.d"
  "/root/repo/src/pinsim/pinsim.cc" "src/CMakeFiles/interf.dir/pinsim/pinsim.cc.o" "gcc" "src/CMakeFiles/interf.dir/pinsim/pinsim.cc.o.d"
  "/root/repo/src/pmu/pmu.cc" "src/CMakeFiles/interf.dir/pmu/pmu.cc.o" "gcc" "src/CMakeFiles/interf.dir/pmu/pmu.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/interf.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/interf.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/CMakeFiles/interf.dir/stats/distributions.cc.o" "gcc" "src/CMakeFiles/interf.dir/stats/distributions.cc.o.d"
  "/root/repo/src/stats/hypothesis.cc" "src/CMakeFiles/interf.dir/stats/hypothesis.cc.o" "gcc" "src/CMakeFiles/interf.dir/stats/hypothesis.cc.o.d"
  "/root/repo/src/stats/kde.cc" "src/CMakeFiles/interf.dir/stats/kde.cc.o" "gcc" "src/CMakeFiles/interf.dir/stats/kde.cc.o.d"
  "/root/repo/src/stats/regression.cc" "src/CMakeFiles/interf.dir/stats/regression.cc.o" "gcc" "src/CMakeFiles/interf.dir/stats/regression.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/CMakeFiles/interf.dir/trace/generator.cc.o" "gcc" "src/CMakeFiles/interf.dir/trace/generator.cc.o.d"
  "/root/repo/src/trace/io.cc" "src/CMakeFiles/interf.dir/trace/io.cc.o" "gcc" "src/CMakeFiles/interf.dir/trace/io.cc.o.d"
  "/root/repo/src/trace/program.cc" "src/CMakeFiles/interf.dir/trace/program.cc.o" "gcc" "src/CMakeFiles/interf.dir/trace/program.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/interf.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/interf.dir/trace/trace.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/interf.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/interf.dir/util/logging.cc.o.d"
  "/root/repo/src/util/options.cc" "src/CMakeFiles/interf.dir/util/options.cc.o" "gcc" "src/CMakeFiles/interf.dir/util/options.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/interf.dir/util/random.cc.o" "gcc" "src/CMakeFiles/interf.dir/util/random.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/interf.dir/util/table.cc.o" "gcc" "src/CMakeFiles/interf.dir/util/table.cc.o.d"
  "/root/repo/src/workloads/builder.cc" "src/CMakeFiles/interf.dir/workloads/builder.cc.o" "gcc" "src/CMakeFiles/interf.dir/workloads/builder.cc.o.d"
  "/root/repo/src/workloads/profile.cc" "src/CMakeFiles/interf.dir/workloads/profile.cc.o" "gcc" "src/CMakeFiles/interf.dir/workloads/profile.cc.o.d"
  "/root/repo/src/workloads/spec.cc" "src/CMakeFiles/interf.dir/workloads/spec.cc.o" "gcc" "src/CMakeFiles/interf.dir/workloads/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
