# Empty compiler generated dependencies file for bench_scaling_parallel.
# This may be replaced when dependencies are built.
