file(REMOVE_RECURSE
  "../bench/bench_scaling_parallel"
  "../bench/bench_scaling_parallel.pdb"
  "CMakeFiles/bench_scaling_parallel.dir/bench_scaling_parallel.cc.o"
  "CMakeFiles/bench_scaling_parallel.dir/bench_scaling_parallel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
