file(REMOVE_RECURSE
  "../bench/bench_fig4_linearity"
  "../bench/bench_fig4_linearity.pdb"
  "CMakeFiles/bench_fig4_linearity.dir/bench_fig4_linearity.cc.o"
  "CMakeFiles/bench_fig4_linearity.dir/bench_fig4_linearity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
