file(REMOVE_RECURSE
  "../bench/bench_fig6_blame"
  "../bench/bench_fig6_blame.pdb"
  "CMakeFiles/bench_fig6_blame.dir/bench_fig6_blame.cc.o"
  "CMakeFiles/bench_fig6_blame.dir/bench_fig6_blame.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_blame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
