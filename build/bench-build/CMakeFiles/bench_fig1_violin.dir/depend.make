# Empty dependencies file for bench_fig1_violin.
# This may be replaced when dependencies are built.
