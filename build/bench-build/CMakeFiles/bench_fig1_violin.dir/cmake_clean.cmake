file(REMOVE_RECURSE
  "../bench/bench_fig1_violin"
  "../bench/bench_fig1_violin.pdb"
  "CMakeFiles/bench_fig1_violin.dir/bench_fig1_violin.cc.o"
  "CMakeFiles/bench_fig1_violin.dir/bench_fig1_violin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_violin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
