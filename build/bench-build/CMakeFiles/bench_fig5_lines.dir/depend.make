# Empty dependencies file for bench_fig5_lines.
# This may be replaced when dependencies are built.
