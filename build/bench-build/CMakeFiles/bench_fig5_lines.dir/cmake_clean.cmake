file(REMOVE_RECURSE
  "../bench/bench_fig5_lines"
  "../bench/bench_fig5_lines.pdb"
  "CMakeFiles/bench_fig5_lines.dir/bench_fig5_lines.cc.o"
  "CMakeFiles/bench_fig5_lines.dir/bench_fig5_lines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
