file(REMOVE_RECURSE
  "../bench/bench_fig8_predicted_cpi"
  "../bench/bench_fig8_predicted_cpi.pdb"
  "CMakeFiles/bench_fig8_predicted_cpi.dir/bench_fig8_predicted_cpi.cc.o"
  "CMakeFiles/bench_fig8_predicted_cpi.dir/bench_fig8_predicted_cpi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_predicted_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
