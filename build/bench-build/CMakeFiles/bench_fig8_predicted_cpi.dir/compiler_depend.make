# Empty compiler generated dependencies file for bench_fig8_predicted_cpi.
# This may be replaced when dependencies are built.
