file(REMOVE_RECURSE
  "../bench/bench_fig3_cache"
  "../bench/bench_fig3_cache.pdb"
  "CMakeFiles/bench_fig3_cache.dir/bench_fig3_cache.cc.o"
  "CMakeFiles/bench_fig3_cache.dir/bench_fig3_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
