file(REMOVE_RECURSE
  "../bench/bench_ext_icache"
  "../bench/bench_ext_icache.pdb"
  "CMakeFiles/bench_ext_icache.dir/bench_ext_icache.cc.o"
  "CMakeFiles/bench_ext_icache.dir/bench_ext_icache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
