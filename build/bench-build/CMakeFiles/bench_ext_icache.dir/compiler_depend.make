# Empty compiler generated dependencies file for bench_ext_icache.
# This may be replaced when dependencies are built.
