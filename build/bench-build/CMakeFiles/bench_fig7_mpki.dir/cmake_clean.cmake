file(REMOVE_RECURSE
  "../bench/bench_fig7_mpki"
  "../bench/bench_fig7_mpki.pdb"
  "CMakeFiles/bench_fig7_mpki.dir/bench_fig7_mpki.cc.o"
  "CMakeFiles/bench_fig7_mpki.dir/bench_fig7_mpki.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
