# Empty dependencies file for bench_fig7_mpki.
# This may be replaced when dependencies are built.
