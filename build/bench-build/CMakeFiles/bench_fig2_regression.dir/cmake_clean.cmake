file(REMOVE_RECURSE
  "../bench/bench_fig2_regression"
  "../bench/bench_fig2_regression.pdb"
  "CMakeFiles/bench_fig2_regression.dir/bench_fig2_regression.cc.o"
  "CMakeFiles/bench_fig2_regression.dir/bench_fig2_regression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
