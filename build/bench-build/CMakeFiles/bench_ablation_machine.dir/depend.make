# Empty dependencies file for bench_ablation_machine.
# This may be replaced when dependencies are built.
