file(REMOVE_RECURSE
  "../bench/bench_ablation_machine"
  "../bench/bench_ablation_machine.pdb"
  "CMakeFiles/bench_ablation_machine.dir/bench_ablation_machine.cc.o"
  "CMakeFiles/bench_ablation_machine.dir/bench_ablation_machine.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
