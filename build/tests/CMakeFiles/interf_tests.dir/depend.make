# Empty dependencies file for interf_tests.
# This may be replaced when dependencies are built.
