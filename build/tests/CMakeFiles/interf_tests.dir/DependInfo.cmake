
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bimodal.cc" "tests/CMakeFiles/interf_tests.dir/test_bimodal.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_bimodal.cc.o.d"
  "/root/repo/tests/test_btb.cc" "tests/CMakeFiles/interf_tests.dir/test_btb.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_btb.cc.o.d"
  "/root/repo/tests/test_builder.cc" "tests/CMakeFiles/interf_tests.dir/test_builder.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_builder.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/interf_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_campaign.cc" "tests/CMakeFiles/interf_tests.dir/test_campaign.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_campaign.cc.o.d"
  "/root/repo/tests/test_descriptive.cc" "tests/CMakeFiles/interf_tests.dir/test_descriptive.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_descriptive.cc.o.d"
  "/root/repo/tests/test_distributions.cc" "tests/CMakeFiles/interf_tests.dir/test_distributions.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_distributions.cc.o.d"
  "/root/repo/tests/test_factory.cc" "tests/CMakeFiles/interf_tests.dir/test_factory.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_factory.cc.o.d"
  "/root/repo/tests/test_generator.cc" "tests/CMakeFiles/interf_tests.dir/test_generator.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_generator.cc.o.d"
  "/root/repo/tests/test_heap.cc" "tests/CMakeFiles/interf_tests.dir/test_heap.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_heap.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/interf_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_hybrid.cc" "tests/CMakeFiles/interf_tests.dir/test_hybrid.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_hybrid.cc.o.d"
  "/root/repo/tests/test_hypothesis.cc" "tests/CMakeFiles/interf_tests.dir/test_hypothesis.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_hypothesis.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/interf_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_kde.cc" "tests/CMakeFiles/interf_tests.dir/test_kde.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_kde.cc.o.d"
  "/root/repo/tests/test_linker.cc" "tests/CMakeFiles/interf_tests.dir/test_linker.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_linker.cc.o.d"
  "/root/repo/tests/test_logging.cc" "tests/CMakeFiles/interf_tests.dir/test_logging.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_logging.cc.o.d"
  "/root/repo/tests/test_ltage.cc" "tests/CMakeFiles/interf_tests.dir/test_ltage.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_ltage.cc.o.d"
  "/root/repo/tests/test_model.cc" "tests/CMakeFiles/interf_tests.dir/test_model.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_model.cc.o.d"
  "/root/repo/tests/test_noise.cc" "tests/CMakeFiles/interf_tests.dir/test_noise.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_noise.cc.o.d"
  "/root/repo/tests/test_options.cc" "tests/CMakeFiles/interf_tests.dir/test_options.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_options.cc.o.d"
  "/root/repo/tests/test_perceptron.cc" "tests/CMakeFiles/interf_tests.dir/test_perceptron.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_perceptron.cc.o.d"
  "/root/repo/tests/test_pinsim.cc" "tests/CMakeFiles/interf_tests.dir/test_pinsim.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_pinsim.cc.o.d"
  "/root/repo/tests/test_pmu.cc" "tests/CMakeFiles/interf_tests.dir/test_pmu.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_pmu.cc.o.d"
  "/root/repo/tests/test_predict.cc" "tests/CMakeFiles/interf_tests.dir/test_predict.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_predict.cc.o.d"
  "/root/repo/tests/test_program.cc" "tests/CMakeFiles/interf_tests.dir/test_program.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_program.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/interf_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/interf_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_ras.cc" "tests/CMakeFiles/interf_tests.dir/test_ras.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_ras.cc.o.d"
  "/root/repo/tests/test_regression.cc" "tests/CMakeFiles/interf_tests.dir/test_regression.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_regression.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/interf_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_runner.cc" "tests/CMakeFiles/interf_tests.dir/test_runner.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_runner.cc.o.d"
  "/root/repo/tests/test_spec.cc" "tests/CMakeFiles/interf_tests.dir/test_spec.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_spec.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/interf_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_threadpool.cc" "tests/CMakeFiles/interf_tests.dir/test_threadpool.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_threadpool.cc.o.d"
  "/root/repo/tests/test_timing.cc" "tests/CMakeFiles/interf_tests.dir/test_timing.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_timing.cc.o.d"
  "/root/repo/tests/test_trace_io.cc" "tests/CMakeFiles/interf_tests.dir/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_trace_io.cc.o.d"
  "/root/repo/tests/test_twolevel.cc" "tests/CMakeFiles/interf_tests.dir/test_twolevel.cc.o" "gcc" "tests/CMakeFiles/interf_tests.dir/test_twolevel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/interf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
