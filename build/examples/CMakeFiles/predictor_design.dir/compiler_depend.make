# Empty compiler generated dependencies file for predictor_design.
# This may be replaced when dependencies are built.
