file(REMOVE_RECURSE
  "CMakeFiles/predictor_design.dir/predictor_design.cpp.o"
  "CMakeFiles/predictor_design.dir/predictor_design.cpp.o.d"
  "predictor_design"
  "predictor_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
