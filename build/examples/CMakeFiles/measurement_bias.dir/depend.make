# Empty dependencies file for measurement_bias.
# This may be replaced when dependencies are built.
