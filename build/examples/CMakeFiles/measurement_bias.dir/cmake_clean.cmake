file(REMOVE_RECURSE
  "CMakeFiles/measurement_bias.dir/measurement_bias.cpp.o"
  "CMakeFiles/measurement_bias.dir/measurement_bias.cpp.o.d"
  "measurement_bias"
  "measurement_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurement_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
