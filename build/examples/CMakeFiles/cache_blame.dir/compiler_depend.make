# Empty compiler generated dependencies file for cache_blame.
# This may be replaced when dependencies are built.
