file(REMOVE_RECURSE
  "CMakeFiles/cache_blame.dir/cache_blame.cpp.o"
  "CMakeFiles/cache_blame.dir/cache_blame.cpp.o.d"
  "cache_blame"
  "cache_blame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_blame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
