/**
 * @file
 * Cache blame: using heap randomization (the DieHard-style allocator)
 * together with code reordering to attribute performance variance to
 * the memory hierarchy — the Section 1.3 / Figure 3 workflow, and a
 * preview of the paper's "future work" on modeling caches.
 *
 * For each benchmark we run two campaigns over the same code layouts:
 * one with deterministic heap placement, one with randomized placement,
 * and compare (a) how much CPI variance appears and (b) how blame
 * splits between branch prediction and the caches.
 */

#include <cstdlib>
#include <iostream>

#include "interferometry/campaign.hh"
#include "util/logging.hh"
#include "interferometry/model.hh"
#include "stats/descriptive.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

int
main(int argc, char **argv)
{
    u32 layouts = argc > 1 ? std::atoi(argv[1]) : 24;
    std::vector<std::string> benchmarks{"454.calculix", "429.mcf",
                                        "471.omnetpp", "456.hmmer"};

    std::cout << "Cache blame under heap randomization (" << layouts
              << " layouts per campaign)\n\n";

    TableWriter table;
    table.addColumn("Benchmark", Align::Left);
    table.addColumn("heap", Align::Left);
    table.addColumn("CPI sd%");
    table.addColumn("branch r2");
    table.addColumn("L1D r2");
    table.addColumn("L2 r2");

    for (const auto &name : benchmarks) {
        for (bool randomize : {false, true}) {
            CampaignConfig cfg;
            cfg.instructionBudget = 300000;
            cfg.initialLayouts = layouts;
            cfg.maxLayouts = layouts;
            cfg.randomizeHeap = randomize;
            Campaign camp(workloads::specFor(name).profile, cfg);
            auto samples = camp.measureLayouts(0, layouts);

            auto cpi = column(samples, &core::Measurement::cpi);
            auto mpki = column(samples, &core::Measurement::mpki);
            auto l1d = column(samples, &core::Measurement::l1dMpki);
            auto l2 = column(samples, &core::Measurement::l2Mpki);
            double sd_pct = 100.0 * stats::sampleStdDev(cpi) /
                            stats::mean(cpi);

            stats::LinearFit branch(mpki, cpi);
            stats::LinearFit fit_l1d(l1d, cpi);
            stats::LinearFit fit_l2(l2, cpi);

            table.beginRow();
            table.cell(name);
            table.cell(std::string(randomize ? "randomized"
                                             : "deterministic"));
            table.cell(sd_pct, "%.3f");
            table.cell(branch.r2(), "%.3f");
            table.cell(fit_l1d.r2(), "%.3f");
            table.cell(fit_l2.r2(), "%.3f");
        }
    }
    table.print(std::cout);
    std::cout << "\nReading the table: with the deterministic "
                 "allocator, data addresses never move, so L1D/L2 "
                 "blame comes only from code-side traffic; the "
                 "randomized allocator adds data-placement variance, "
                 "raising total CPI variance and shifting blame toward "
                 "the caches (Figure 3's premise).\n";
    return 0;
}
