/**
 * @file
 * Quickstart: the whole program-interferometry pipeline in ~60 lines.
 *
 *  1. pick a benchmark (a synthetic SPEC CPU 2006 analog),
 *  2. measure it under N random-but-reproducible code reorderings,
 *  3. fit the CPI ~ MPKI regression model,
 *  4. use the model to predict the machine's CPI with a hypothetical
 *     (here: perfect) branch predictor.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [benchmark] [layouts] [jobs] [storedir]
 *
 * Pass a store directory to checkpoint the campaign: rerunning the
 * same command then loads every sample from disk (byte-identical, zero
 * new measurements) instead of re-measuring.
 */

#include <cstdlib>
#include <iostream>

#include "interferometry/campaign.hh"
#include "util/logging.hh"
#include "interferometry/model.hh"
#include "interferometry/predict.hh"
#include "interferometry/report.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

int
main(int argc, char **argv)
{
    std::string benchmark = argc > 1 ? argv[1] : "400.perlbench";
    u32 layouts = argc > 2 ? std::atoi(argv[2]) : 30;
    u32 jobs = argc > 3 ? std::atoi(argv[3]) : 0; // 0 = all cores
    std::string store_dir = argc > 4 ? argv[4] : "";

    // 1. The benchmark: a profile describing its branch and memory
    //    character, from which the static program and its dynamic
    //    trace are built deterministically.
    const auto &spec = workloads::specFor(benchmark);

    // 2. The campaign: for each layout seed, link a fresh "executable"
    //    (procedures and object files permuted, Camino-style), run it
    //    on the modeled Xeon E5440, and read the counters with the
    //    paper's three-group median-of-five protocol.
    CampaignConfig config;
    config.instructionBudget = 300000;
    config.initialLayouts = layouts;
    config.maxLayouts = layouts;
    // Layouts are measured in parallel; the samples are byte-identical
    // at any worker count, so this is purely a wall-clock knob.
    config.jobs = jobs;
    // With a store, completed batches are checkpointed on disk and
    // reruns of the same configuration are pure cache hits.
    config.storeDir = store_dir;
    Campaign campaign(spec.profile, config);
    auto samples = campaign.measureLayouts(0, layouts);

    std::cout << benchmark << ": measured " << samples.size()
              << " semantically identical executables";
    if (!store_dir.empty())
        std::cout << " (" << campaign.cachedLayouts()
                  << " from the store, " << campaign.measuredLayouts()
                  << " fresh)";
    std::cout << '\n';
    for (u32 i = 0; i < 3; ++i)
        std::cout << "  layout " << i << ": CPI "
                  << strprintf("%.4f", samples[i].cpi) << ", MPKI "
                  << strprintf("%.3f", samples[i].mpki) << '\n';
    std::cout << "  ...\n\n";

    // 3. The model: least-squares regression of CPI on MPKI with the
    //    paper's significance gate.
    PerformanceModel model(benchmark, samples);
    std::cout << "model: " << regressionLine(model) << '\n';
    std::cout << "branch correlation "
              << (model.branchSignificant() ? "IS" : "is NOT")
              << " statistically significant (t = "
              << strprintf("%.2f", model.branchModel().test.statistic)
              << ", p = "
              << strprintf("%.4g", model.branchModel().test.pValue)
              << ")\n\n";

    // 4. The payoff: what would a perfect predictor buy, without a
    //    cycle-accurate simulator of the whole machine?
    PredictorEvaluator eval(model, model.meanCpi());
    auto perfect = eval.evaluatePerfect();
    std::cout << "real predictor:    CPI "
              << strprintf("%.3f", model.meanCpi()) << " at "
              << strprintf("%.2f", model.meanMpki()) << " MPKI\n";
    std::cout << "perfect predictor: CPI "
              << strprintf("%.3f  (95%% PI [%.3f, %.3f])", perfect.cpi,
                           perfect.pi.lo, perfect.pi.hi)
              << "\n                   -> "
              << strprintf("%.1f%%", 100 * perfect.improvementVsReal)
              << " faster\n";
    return 0;
}
