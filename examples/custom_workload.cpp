/**
 * @file
 * Building your own workload.
 *
 * The shipped suite models SPEC CPU 2006, but interferometry is a
 * general tool: any workload expressible as a WorkloadProfile (branch
 * character, working sets, code structure) can be measured. This
 * example models a little "key-value store" service — pointer-chasing
 * lookups over a heap-resident index, an unpredictable hit/miss branch
 * per request, a hot dispatch loop — runs a campaign on it, and asks
 * the two questions an architect would: how much is branch prediction
 * costing this service, and would an L-TAGE-class predictor help?
 */

#include <cstdlib>
#include <iostream>

#include "bpred/factory.hh"
#include "interferometry/campaign.hh"
#include "interferometry/model.hh"
#include "interferometry/predict.hh"
#include "interferometry/report.hh"
#include "pinsim/pinsim.hh"
#include "util/logging.hh"
#include "workloads/profile.hh"

using namespace interf;
using namespace interf::interferometry;

namespace
{

workloads::WorkloadProfile
kvStoreProfile()
{
    workloads::WorkloadProfile p;
    p.name = "kvstore";
    p.structureSeed = 0xcafe01;
    p.behaviourSeed = 0xcafe02;

    // Code: a modest service — dispatch loop, parsing, hash probing.
    p.procedures = 90;
    p.hotProcedures = 45;
    p.objectFiles = 14;
    p.meanBlocksPerProc = 9;
    p.callDensity = 0.12;
    p.indirectDensity = 0.02; // request-type dispatch

    // Branches: the hit/miss check per probe is data-dependent noise;
    // the rest is loop structure and well-biased validation checks.
    p.condFraction = 0.45;
    p.fracBiased = 0.40;
    p.fracPeriodic = 0.30;
    p.fracHistory = 0.12;
    p.fracRandom = 0.15; // hash hit/miss: unpredictable
    p.biasMin = 0.90;
    p.biasMax = 0.99;

    // Data: a heap-resident index too big for L1, mostly L2-resident,
    // with a tail of cold objects.
    p.loadsPerInst = 0.26;
    p.storesPerInst = 0.08;
    p.l1WorkingSet = 24 << 10;
    p.l2WorkingSet = 3 << 20;
    p.memWorkingSet = 64 << 20;
    p.fracL1 = 0.78;
    p.fracL2 = 0.18;
    p.fracMem = 0.04;
    p.heapFraction = 1.0; // everything allocated
    p.branchLoadDepProb = 0.35; // hit/miss branch waits on the probe load
    p.depLoadSlowTier = 0.5;

    p.meanExtraExecCycles = 0.8;
    p.validate();
    return p;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    u32 layouts = argc > 1 ? std::atoi(argv[1]) : 40;
    u32 jobs = argc > 2 ? std::atoi(argv[2]) : 0;

    auto profile = kvStoreProfile();
    CampaignConfig cfg;
    cfg.instructionBudget = 400000;
    cfg.initialLayouts = layouts;
    cfg.maxLayouts = layouts * 3; // allow paper-style escalation
    cfg.jobs = jobs; // 0 = all cores; results identical at any value
    Campaign campaign(profile, cfg);

    std::cout << "Custom workload '" << profile.name << "': "
              << campaign.program().procedures().size()
              << " procedures, "
              << (campaign.program().totalCodeBytes() >> 10)
              << " KB text, "
              << campaign.trace().instCount << " instructions/run\n\n";

    auto result = campaign.run();
    if (!result.significant) {
        std::cout << "no significant CPI~MPKI correlation ("
                  << (result.enoughMpkiRange
                          ? "t-test failed"
                          : "not enough MPKI range")
                  << ") — this workload's performance is not "
                     "branch-bound; interferometry says so honestly\n";
        return 0;
    }

    PerformanceModel model(profile.name, result.samples);
    std::cout << "campaign: " << result.layoutsUsed << " layouts, "
              << regressionLine(model) << "\n\n";

    // Question 1: what is branch prediction costing us?
    PredictorEvaluator eval(model, model.meanCpi());
    auto perfect = eval.evaluatePerfect();
    std::cout << "cost of mispredictions today: "
              << strprintf("%.1f%% of cycles", 100 * perfect.improvementVsReal)
              << strprintf("  (CPI %.3f -> %.3f [%.3f, %.3f])",
                           model.meanCpi(), perfect.cpi, perfect.pi.lo,
                           perfect.pi.hi)
              << '\n';

    // Question 2: would an L-TAGE-class front end help?
    pinsim::PinSim sim({"ltage"});
    std::vector<std::vector<pinsim::PredictorResult>> runs;
    for (u32 i = 0; i < std::min(layouts, 16u); ++i)
        runs.push_back(sim.run(campaign.program(), campaign.trace(),
                               campaign.codeLayoutFor(i)));
    double ltage_mpki = pinsim::averageMpki(runs)[0];
    auto ltage = eval.evaluate("ltage", ltage_mpki);
    std::cout << "L-TAGE-class predictor:       "
              << strprintf("%+.1f%%", 100 * ltage.improvementVsReal)
              << strprintf("  (MPKI %.2f -> %.2f, CPI %.3f [%.3f, %.3f])",
                           model.meanMpki(), ltage_mpki, ltage.cpi,
                           ltage.pi.lo, ltage.pi.hi)
              << '\n';

    std::cout << "\nSwap kvStoreProfile() for your own service's "
                 "character and re-run — no simulator of your whole "
                 "machine required.\n";
    return 0;
}
