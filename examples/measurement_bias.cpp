/**
 * @file
 * Measurement bias demo — the Mytkowicz et al. trap that motivated
 * program interferometry (Section 2.1).
 *
 * A developer "evaluates" a compiler optimization by timing a baseline
 * build against an optimized build. But the optimized build also has a
 * different link order. This example shows how layout luck can
 * completely masquerade as a speedup: the "optimization" here is a
 * no-op (identical program semantics), yet single-layout comparisons
 * happily report several-percent wins or losses. Comparing
 * *distributions over layouts* (what interferometry does) exposes the
 * truth.
 */

#include <cstdlib>
#include <iostream>

#include "interferometry/campaign.hh"
#include "interferometry/model.hh"
#include "util/logging.hh"
#include "stats/descriptive.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

int
main(int argc, char **argv)
{
    std::string benchmark = argc > 1 ? argv[1] : "445.gobmk";
    u32 layouts = argc > 2 ? std::atoi(argv[2]) : 40;

    CampaignConfig cfg;
    cfg.instructionBudget = 300000;
    cfg.initialLayouts = layouts;
    cfg.maxLayouts = layouts;
    Campaign camp(workloads::specFor(benchmark).profile, cfg);
    auto samples = camp.measureLayouts(0, layouts);

    auto cpi = column(samples, &core::Measurement::cpi);
    double mean = stats::mean(cpi);

    std::cout << "Measurement bias demo on " << benchmark << ": a "
                 "no-op 'optimization' that only changes link order\n\n";

    // The naive experiment, repeated for several (baseline, optimized)
    // layout pairs a developer might accidentally compare.
    TableWriter table;
    table.addColumn("baseline layout");
    table.addColumn("optimized layout");
    table.addColumn("\"speedup\"%");
    double best = 0, worst = 0;
    for (u32 pair = 0; pair + 1 < layouts; pair += 2) {
        double speedup = 100.0 * (cpi[pair] - cpi[pair + 1]) / cpi[pair];
        best = std::max(best, speedup);
        worst = std::min(worst, speedup);
        if (pair < 12) {
            table.beginRow();
            table.cell(static_cast<long long>(pair));
            table.cell(static_cast<long long>(pair + 1));
            table.cell(speedup, "%+.2f");
        }
    }
    table.print(std::cout);

    std::cout << "\nacross all pairs, the no-op 'optimization' "
              << strprintf("reported between %+.2f%% and %+.2f%%",
                           worst, best)
              << "\n\nthe honest picture over " << layouts
              << " layouts:\n"
              << strprintf("  mean CPI %.4f, sd %.4f (%.2f%%), range "
                           "[%.4f, %.4f]\n",
                           mean, stats::sampleStdDev(cpi),
                           100.0 * stats::sampleStdDev(cpi) / mean,
                           stats::minValue(cpi), stats::maxValue(cpi))
              << "\nconclusion: a single-layout A/B comparison can "
                 "report a difference of several standard deviations "
                 "of pure layout luck — sample many layouts, or your "
                 "evaluation measures the linker, not your idea "
                 "(Mytkowicz et al., ASPLOS 2009; this paper, Section "
                 "2.1)\n";
    return 0;
}
