/**
 * @file
 * Evaluating a branch predictor design with program interferometry —
 * the paper's Section 7 workflow, usable for *your own* predictor.
 *
 * A designer wants to know: if I gave this machine a different branch
 * predictor, how much faster would my workloads run? Interferometry
 * answers without a cycle-accurate model of the machine:
 *
 *  - the regression model (from layout perturbation) captures how this
 *    machine's CPI responds to mispredictions;
 *  - the candidate predictors only need *functional* simulation (the
 *    Pin-style tool) to get their MPKI on the same executables.
 *
 * This example defines a custom predictor (a small two-bit/gshare
 * tournament you might be prototyping), plugs it into the pipeline
 * next to the stock candidates, and prints the predicted speedups.
 */

#include <iostream>
#include <map>

#include "bpred/bimodal.hh"
#include "bpred/factory.hh"
#include "bpred/twolevel.hh"
#include "interferometry/campaign.hh"
#include "util/logging.hh"
#include "interferometry/model.hh"
#include "interferometry/predict.hh"
#include "pinsim/pinsim.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

namespace
{

/**
 * Your prototype: gshare with a per-branch "agree" bias bit — the kind
 * of tweak a designer would want to cost out before building RTL.
 * (Any BranchPredictor subclass works here.)
 */
class AgreeGshare : public bpred::BranchPredictor
{
  public:
    AgreeGshare() : gshare_(bpred::TwoLevelScheme::Gshare, 16384, 12),
                    bias_(8192) {}

    bool
    predictAndTrain(Addr pc, bool taken) override
    {
        // Predict "agrees with per-branch bias" instead of taken/not:
        // converts destructive gshare aliasing into neutral aliasing.
        bool bias = bias_.predictAndTrain(pc, taken);
        bool agree = gshare_.predictAndTrain(pc, taken == bias);
        return agree ? bias : !bias;
    }

    void
    reset() override
    {
        gshare_.reset();
        bias_.reset();
    }

    std::string name() const override { return "agree-gshare-proto"; }

    u64
    sizeBits() const override
    {
        return gshare_.sizeBits() + bias_.sizeBits();
    }

  private:
    bpred::TwoLevelPredictor gshare_;
    bpred::BimodalPredictor bias_;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    u32 layouts = argc > 1 ? std::atoi(argv[1]) : 20;
    std::vector<std::string> benchmarks{"400.perlbench", "445.gobmk",
                                        "471.omnetpp", "482.sphinx3"};

    std::cout << "Predictor design study over " << layouts
              << " layouts per benchmark\n\n";

    TableWriter table;
    table.addColumn("Benchmark", Align::Left);
    table.addColumn("real CPI");
    table.addColumn("gas-8KB");
    table.addColumn("ltage");
    table.addColumn("prototype");
    table.addColumn("proto gain%");

    double total_gain = 0;
    for (const auto &name : benchmarks) {
        CampaignConfig cfg;
        cfg.instructionBudget = 300000;
        cfg.initialLayouts = layouts;
        cfg.maxLayouts = layouts;
        Campaign camp(workloads::specFor(name).profile, cfg);

        // Interferometry model of the machine.
        auto samples = camp.measureLayouts(0, layouts);
        PerformanceModel model(name, samples);
        if (!model.branchSignificant()) {
            std::cout << name << ": no significant branch correlation; "
                      << "skipping\n";
            continue;
        }

        // Functional simulation of the candidates, custom one included.
        pinsim::PinSim stock({"gas:8192:10", "ltage"});
        AgreeGshare proto;
        std::vector<double> stock_sum(2, 0.0);
        double proto_sum = 0.0;
        for (u32 i = 0; i < layouts; ++i) {
            auto code = camp.codeLayoutFor(i);
            auto res = stock.run(camp.program(), camp.trace(), code);
            stock_sum[0] += res[0].mpki();
            stock_sum[1] += res[1].mpki();
            // Custom predictor: same replay loop, by hand.
            proto.reset();
            Count wrong = 0;
            for (const auto &ev : camp.trace().events) {
                const auto &bb =
                    camp.program().block(ev.proc, ev.block);
                if (!bb.branch.isConditional())
                    continue;
                bool taken = ev.taken != 0;
                if (proto.predictAndTrain(
                        code.branchAddr(ev.proc, ev.block), taken) !=
                    taken)
                    ++wrong;
            }
            proto_sum += 1000.0 * double(wrong) /
                         double(camp.trace().instCount);
        }

        PredictorEvaluator eval(model, model.meanCpi());
        auto gas = eval.evaluate("gas", stock_sum[0] / layouts);
        auto ltage = eval.evaluate("ltage", stock_sum[1] / layouts);
        auto mine = eval.evaluate("proto", proto_sum / layouts);

        table.beginRow();
        table.cell(name);
        table.cell(model.meanCpi(), "%.3f");
        table.cell(gas.cpi, "%.3f");
        table.cell(ltage.cpi, "%.3f");
        table.cell(mine.cpi, "%.3f");
        table.cell(100 * mine.improvementVsReal, "%+.1f");
        total_gain += mine.improvementVsReal;
    }
    table.print(std::cout);
    std::cout << "\nprototype ("
              << strprintf("%.0f", AgreeGshare().sizeBits() / 1024.0)
              << " Kbit) average predicted speedup: "
              << strprintf("%+.1f%%",
                           100 * total_gain / double(benchmarks.size()))
              << "\n(the same workflow costs out any BranchPredictor "
                 "subclass before committing design effort — Section "
                 "7.2.3)\n";
    return 0;
}
