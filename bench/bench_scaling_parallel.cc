/**
 * @file
 * Parallel-executor scaling bench (google-benchmark): layouts/sec of
 * Campaign::measureLayouts at 1, 2, 4 and hardware_concurrency worker
 * threads, plus the raw dispatch overhead of the exec substrate.
 *
 * The interesting series is items_per_second (one item = one layout)
 * versus the jobs argument: on an N-core machine the figure-scale
 * campaign should scale near-linearly until jobs reaches N, because
 * layouts are embarrassingly parallel and workers share only immutable
 * state. Run with --benchmark_format=json to record the series in
 * BENCH JSON (items_per_second per jobs value); pair a jobs:1 and a
 * jobs:4 row to read off the speedup.
 */

#include <algorithm>
#include <vector>

#include <benchmark/benchmark.h>

#include "exec/threadpool.hh"
#include "interferometry/campaign.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;

/** Jobs axis: 1, 2, 4 and the machine's hardware concurrency. */
void
JobsArgs(benchmark::internal::Benchmark *b)
{
    std::vector<int> jobs = {1, 2, 4};
    int hw = static_cast<int>(exec::ThreadPool::hardwareWorkers());
    if (std::find(jobs.begin(), jobs.end(), hw) == jobs.end())
        jobs.push_back(hw);
    for (int j : jobs)
        b->Arg(j);
}

/**
 * A figure-scale campaign batch (40 layouts x 300k instructions, the
 * figure benches' default scale) at state.range(0) workers. Campaign
 * construction (program build + trace generation) is hoisted out of
 * the timed loop; each iteration measures the full 40-layout batch, so
 * items_per_second is layouts/sec.
 */
void
BM_CampaignMeasureLayouts(benchmark::State &state)
{
    const u32 layouts = 40;
    interferometry::CampaignConfig cfg;
    cfg.instructionBudget = 300000;
    cfg.initialLayouts = layouts;
    cfg.maxLayouts = layouts;
    cfg.jobs = static_cast<u32>(state.range(0));
    interferometry::Campaign camp(
        workloads::specFor("445.gobmk").profile, cfg);
    for (auto _ : state) {
        auto samples = camp.measureLayouts(0, layouts);
        benchmark::DoNotOptimize(samples.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            layouts);
}
BENCHMARK(BM_CampaignMeasureLayouts)
    ->Apply(JobsArgs)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Pure fan-out/join cost of parallelFor over trivial tasks: the fixed
 * price a batch pays for using the pool at all. items = indices.
 */
void
BM_ParallelForDispatch(benchmark::State &state)
{
    const size_t n = 1024;
    exec::ThreadPool pool(static_cast<u32>(state.range(0)));
    std::vector<u64> out(n);
    for (auto _ : state) {
        exec::parallelFor(pool, n,
                          [&out](size_t i) { out[i] = i * i; });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForDispatch)->Apply(JobsArgs)->UseRealTime();

} // anonymous namespace

BENCHMARK_MAIN();
