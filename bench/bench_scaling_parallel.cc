/**
 * @file
 * Parallel-executor scaling bench (google-benchmark): layouts/sec of
 * Campaign::measureLayouts at 1, 2, 4 and hardware_concurrency worker
 * threads, plus the raw dispatch overhead of the exec substrate.
 *
 * The interesting series is items_per_second (one item = one layout)
 * versus the jobs argument: on an N-core machine the figure-scale
 * campaign should scale near-linearly until jobs reaches N, because
 * layouts are embarrassingly parallel and workers share only immutable
 * state. Run with --benchmark_format=json to record google-benchmark's
 * native series, or --json <file> (ours, stripped before
 * benchmark::Initialize sees argv) to write the repo-standard
 * interf-bench-1 report the CI perf job uploads.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.hh"

#include "exec/threadpool.hh"
#include "interferometry/campaign.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;

/** Jobs axis: 1, 2, 4 and the machine's hardware concurrency. */
void
JobsArgs(benchmark::internal::Benchmark *b)
{
    std::vector<int> jobs = {1, 2, 4};
    int hw = static_cast<int>(exec::ThreadPool::hardwareWorkers());
    if (std::find(jobs.begin(), jobs.end(), hw) == jobs.end())
        jobs.push_back(hw);
    for (int j : jobs)
        b->Arg(j);
}

/**
 * A figure-scale campaign batch (40 layouts x 300k instructions, the
 * figure benches' default scale) at state.range(0) workers. Campaign
 * construction (program build + trace generation) is hoisted out of
 * the timed loop; each iteration measures the full 40-layout batch, so
 * items_per_second is layouts/sec.
 */
void
BM_CampaignMeasureLayouts(benchmark::State &state)
{
    const u32 layouts = 40;
    interferometry::CampaignConfig cfg;
    cfg.instructionBudget = 300000;
    cfg.initialLayouts = layouts;
    cfg.maxLayouts = layouts;
    cfg.jobs = static_cast<u32>(state.range(0));
    interferometry::Campaign camp(
        workloads::specFor("445.gobmk").profile, cfg);
    for (auto _ : state) {
        auto samples = camp.measureLayouts(0, layouts);
        benchmark::DoNotOptimize(samples.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            layouts);
}
BENCHMARK(BM_CampaignMeasureLayouts)
    ->Apply(JobsArgs)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Pure fan-out/join cost of parallelFor over trivial tasks: the fixed
 * price a batch pays for using the pool at all. items = indices.
 */
void
BM_ParallelForDispatch(benchmark::State &state)
{
    const size_t n = 1024;
    exec::ThreadPool pool(static_cast<u32>(state.range(0)));
    std::vector<u64> out(n);
    for (auto _ : state) {
        exec::parallelFor(pool, n,
                          [&out](size_t i) { out[i] = i * i; });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForDispatch)->Apply(JobsArgs)->UseRealTime();

/**
 * Console reporter that also captures each run as a JsonRow. One item
 * is one layout (SetItemsProcessed), so items_per_second is
 * layouts/sec; the dispatch bench's items are loop indices, which the
 * row's config string spells out.
 */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonCaptureReporter(bench::JsonReport &report)
        : report_(report)
    {
    }

    void ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred || run.run_type != Run::RT_Iteration)
                continue;
            auto it = run.counters.find("items_per_second");
            double items = it == run.counters.end()
                               ? 0.0
                               : static_cast<double>(it->second);
            bool layouts =
                run.benchmark_name().find("CampaignMeasureLayouts") !=
                std::string::npos;
            bench::JsonRow row;
            row.benchmark = "scaling_parallel/" + run.benchmark_name();
            row.config = layouts ? "item=layout workload=445.gobmk "
                                   "layouts=40 instructions=300000"
                                 : "item=index n=1024";
            row.layoutsPerSec = layouts ? items : 0.0;
            row.eventsPerSec = 0.0;
            row.wallMs = run.GetAdjustedRealTime() *
                         (run.time_unit == benchmark::kMillisecond
                              ? 1.0
                              : run.time_unit == benchmark::kSecond
                                    ? 1e3
                                    : 1e-6);
            report_.add(row);
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::JsonReport &report_;
};

/**
 * Pull "--json <file>" / "--json=<file>" out of argv before
 * benchmark::Initialize (which rejects flags it doesn't know).
 */
std::string
extractPathFlag(int &argc, char **argv, const std::string &flag)
{
    const std::string prefix = flag + "=";
    std::string path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == flag && i + 1 < argc) {
            path = argv[++i];
        } else if (arg.rfind(prefix, 0) == 0) {
            path = arg.substr(prefix.size());
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return path;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string json_path = extractPathFlag(argc, argv, "--json");
    std::string telemetry_dir =
        extractPathFlag(argc, argv, "--telemetry-out");
    if (!telemetry_dir.empty())
        telemetry::setOutputDir(telemetry_dir);
    else if (!json_path.empty())
        telemetry::enable();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    bench::JsonReport report;
    JsonCaptureReporter reporter(report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (!json_path.empty())
        report.write(json_path);
    if (!telemetry_dir.empty() && telemetry::enabled())
        telemetry::writeChromeTrace(telemetry_dir + "/trace.json");
    return 0;
}
