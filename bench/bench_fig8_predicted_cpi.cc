/**
 * @file
 * Figure 8: predicted CPI of the real and simulated branch predictors
 * using the interferometry regression models, with 95% prediction
 * intervals as error bars (the real predictor carries the tighter
 * confidence interval, being an observation).
 *
 * Headline numbers (Section 7.2): real predictor CPI 1.387 +- 0.012;
 * perfect prediction 1.223 +- 0.061 (7-16% better, avg 11.8%); L-TAGE
 * 1.320 +- 0.03 (2.4-6.8% better, avg 4.8%).
 */

#include <iostream>

#include "bench_common.hh"
#include "bpred/factory.hh"
#include "interferometry/model.hh"
#include "interferometry/predict.hh"
#include "pinsim/pinsim.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

int
main(int argc, char **argv)
{
    OptionParser opts("bench_fig8_predicted_cpi",
                      "Figure 8: predicted CPI per candidate predictor "
                      "with 95% intervals");
    bench::addScaleOptions(opts, 30, 300000);
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);

    auto specs = bpred::figureCandidateSpecs();
    pinsim::PinSim sim(specs);

    std::cout << "Figure 8: predicted CPI of real and simulated "
                 "predictors (" << scale.layouts
              << " reorderings per benchmark)\n\n";

    TableWriter table;
    table.addColumn("Benchmark", Align::Left);
    table.addColumn("real[CI]", Align::Left);
    for (size_t i = 0; i < sim.numPredictors(); ++i)
        table.addColumn(sim.predictorName(i) + "[PI]", Align::Left);
    table.addColumn("perfect[PI]", Align::Left);

    TableWriter csv;
    csv.addColumn("benchmark", Align::Left);
    csv.addColumn("predictor", Align::Left);
    csv.addColumn("cpi");
    csv.addColumn("lo");
    csv.addColumn("hi");

    double sum_real = 0, sum_perfect = 0, sum_ltage = 0;
    double sum_real_hw = 0, sum_perfect_hw = 0, sum_ltage_hw = 0;
    int n = 0;

    for (const auto &entry : workloads::specSuite()) {
        const auto &name = entry.profile.name;
        if (!bench::selected(scale, name))
            continue;
        if (!entry.expectSignificant)
            continue; // only interferometry-suitable benchmarks
        Campaign camp(entry.profile, bench::campaignConfig(scale));
        auto samples = camp.measureLayouts(0, scale.layouts);
        PerformanceModel model(name, samples);

        std::vector<std::vector<pinsim::PredictorResult>> per_layout;
        for (u32 i = 0; i < scale.layouts; ++i)
            per_layout.push_back(sim.run(camp.program(), camp.trace(),
                                         camp.codeLayoutFor(i)));
        auto mpki = pinsim::averageMpki(per_layout);

        PredictorEvaluator eval(model, model.meanCpi());

        table.beginRow();
        table.cell(name);
        // Real predictor: observation -> confidence interval.
        auto real_ci = model.confidenceInterval(model.meanMpki());
        table.cell(strprintf("%.3f[%.3f,%.3f]", model.meanCpi(),
                             real_ci.lo, real_ci.hi));
        csv.beginRow();
        csv.cell(name);
        csv.cell(std::string("real"));
        csv.cell(model.meanCpi(), "%.4f");
        csv.cell(real_ci.lo, "%.4f");
        csv.cell(real_ci.hi, "%.4f");

        for (size_t i = 0; i < mpki.size(); ++i) {
            auto p = eval.evaluate(sim.predictorName(i), mpki[i]);
            table.cell(strprintf("%.3f[%.3f,%.3f]", p.cpi, p.pi.lo,
                                 p.pi.hi));
            csv.beginRow();
            csv.cell(name);
            csv.cell(p.predictor);
            csv.cell(p.cpi, "%.4f");
            csv.cell(p.pi.lo, "%.4f");
            csv.cell(p.pi.hi, "%.4f");
        }
        auto perfect = eval.evaluatePerfect();
        table.cell(strprintf("%.3f[%.3f,%.3f]", perfect.cpi,
                             perfect.pi.lo, perfect.pi.hi));
        csv.beginRow();
        csv.cell(name);
        csv.cell(std::string("perfect"));
        csv.cell(perfect.cpi, "%.4f");
        csv.cell(perfect.pi.lo, "%.4f");
        csv.cell(perfect.pi.hi, "%.4f");

        sum_real += model.meanCpi();
        sum_perfect += perfect.cpi;
        sum_perfect_hw += perfect.pi.width() / 2.0;
        sum_real_hw += real_ci.width() / 2.0;
        auto ltage = eval.evaluate("ltage", mpki.back());
        sum_ltage += ltage.cpi;
        sum_ltage_hw += ltage.pi.width() / 2.0;
        ++n;
    }

    table.print(std::cout);

    double real = sum_real / n, perfect = sum_perfect / n,
           ltage = sum_ltage / n;
    std::cout << "\naverages over " << n << " benchmarks:\n";
    std::cout << strprintf("  real predictor CPI    %.3f +- %.3f  "
                           "(paper: 1.387 +- 0.012)\n",
                           real, sum_real_hw / n);
    std::cout << strprintf("  perfect prediction    %.3f +- %.3f  -> "
                           "%.1f%% improvement (paper: 1.223 +- 0.061, "
                           "11.8%%)\n",
                           perfect, sum_perfect_hw / n,
                           100 * (real - perfect) / real);
    std::cout << strprintf("  L-TAGE                %.3f +- %.3f  -> "
                           "%.1f%% improvement (paper: 1.320 +- 0.030, "
                           "4.8%%)\n",
                           ltage, sum_ltage_hw / n,
                           100 * (real - ltage) / real);

    if (!scale.csvPath.empty())
        csv.writeCsv(scale.csvPath);
    bench::finishTelemetry(scale);
    return 0;
}
