/**
 * @file
 * Figure 1: violin plots of percentage CPI variation under code
 * reordering, for all 23 benchmarks.
 *
 * "Figure 1 shows the percent difference from average performance as
 * measured by cycles-per-instruction (CPI) caused by 100 random but
 * plausible code reorderings for the SPEC CPU 2006 benchmarks. ...
 * Clearly, some benchmarks are greatly affected by differences in
 * instruction addresses while some are less sensitive."
 */

#include <iostream>

#include "bench_common.hh"
#include "interferometry/report.hh"
#include "stats/descriptive.hh"
#include "stats/kde.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

int
main(int argc, char **argv)
{
    OptionParser opts("bench_fig1_violin",
                      "Figure 1: CPI variation violins under code "
                      "reordering");
    bench::addScaleOptions(opts);
    opts.addFlag("violins", "print an ASCII violin per benchmark");
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);

    std::cout << "Figure 1: % CPI variation over " << scale.layouts
              << " code reorderings\n\n";

    TableWriter table;
    table.addColumn("Benchmark", Align::Left);
    table.addColumn("meanCPI");
    table.addColumn("min%");
    table.addColumn("max%");
    table.addColumn("sd%");
    table.addColumn("mode%");

    TableWriter csv;
    csv.addColumn("benchmark", Align::Left);
    csv.addColumn("grid_pct");
    csv.addColumn("density");

    for (const auto &entry : workloads::specSuite()) {
        const auto &name = entry.profile.name;
        if (!bench::selected(scale, name))
            continue;
        Campaign camp(entry.profile, bench::campaignConfig(scale));
        auto samples = camp.measureLayouts(0, scale.layouts);

        std::vector<double> cpi;
        for (const auto &m : samples)
            cpi.push_back(m.cpi);
        double mean = stats::mean(cpi);
        std::vector<double> pct;
        for (double c : cpi)
            pct.push_back(100.0 * (c - mean) / mean);

        auto violin = stats::kernelDensity(pct, 64);
        table.beginRow();
        table.cell(name);
        table.cell(mean, "%.3f");
        table.cell(stats::minValue(pct), "%+.2f");
        table.cell(stats::maxValue(pct), "%+.2f");
        table.cell(stats::sampleStdDev(pct), "%.3f");
        table.cell(violin.mode(), "%+.2f");

        for (size_t i = 0; i < violin.grid.size(); ++i) {
            csv.beginRow();
            csv.cell(name);
            csv.cell(violin.grid[i], "%.4f");
            csv.cell(violin.density[i], "%.6f");
        }

        if (opts.getFlag("violins")) {
            std::cout << name << ":\n";
            for (const auto &line : asciiViolin(violin, 11, 24))
                std::cout << "  " << line << '\n';
            std::cout << '\n';
        }
    }

    table.print(std::cout);
    std::cout << "\n(percentages are CPI deviation from each "
                 "benchmark's mean; the paper's violins span roughly "
                 "-2% to +2% for sensitive benchmarks)\n";
    if (!scale.csvPath.empty())
        csv.writeCsv(scale.csvPath);
    bench::finishTelemetry(scale);
    return 0;
}
