/**
 * @file
 * Figure 5: regression lines relating MPKI to CPI under the predictor
 * sweep, CPI normalized to perfect prediction — (a) three highly linear
 * benchmarks, (b) the three least linear ones.
 *
 * The paper's panels show 473.astar/401.bzip2/458.sjeng (linear) and
 * 456.hmmer/252.eon/178.galgel (less linear); eon/galgel/sjeng are
 * SPEC 2000 benchmarks outside our modeled suite, so the panels are
 * picked by measured linearity, which reproduces the figure's point:
 * even the worst benchmarks are barely perceptibly nonlinear.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "bpred/factory.hh"
#include "stats/regression.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

namespace
{

struct Series
{
    std::string name;
    std::vector<double> mpki;
    std::vector<double> normCpi; ///< CPI / CPI(perfect).
    double slope = 0.0;
    double intercept = 0.0;
    double errAtZero = 0.0; ///< |intercept - 1| in normalized units.
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("bench_fig5_lines",
                      "Figure 5: normalized MPKI-CPI regression lines "
                      "(most / least linear benchmarks)");
    bench::addScaleOptions(opts, 1, 200000);
    opts.addInt("step", 4, "use every Nth sweep configuration");
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);
    u32 step = static_cast<u32>(opts.getInt("step"));

    auto sweep = bpred::sweepSpecs();
    std::vector<Series> all;

    for (const auto &entry : workloads::specSuite()) {
        const auto &name = entry.profile.name;
        if (!bench::selected(scale, name))
            continue;
        Campaign camp(entry.profile, bench::campaignConfig(scale));
        auto code = camp.codeLayoutFor(0);
        auto heap = camp.heapLayoutFor(0);

        core::Machine perfect(
            core::MachineConfig::xeonE5440().withPredictor("perfect"));
        double base =
            perfect.run(camp.program(), camp.trace(), code, heap).cpi();

        Series s;
        s.name = name;
        for (size_t i = 0; i < sweep.size(); i += step) {
            core::Machine machine(
                core::MachineConfig::xeonE5440().withPredictor(
                    sweep[i]));
            auto r =
                machine.run(camp.program(), camp.trace(), code, heap);
            s.mpki.push_back(r.mpki());
            s.normCpi.push_back(r.cpi() / base);
        }
        stats::LinearFit fit(s.mpki, s.normCpi);
        s.slope = fit.slope();
        s.intercept = fit.intercept();
        // The point (0, 1) is perfect prediction; the regression's
        // deviation there is the figure's visible error.
        s.errAtZero = std::fabs(fit.predict(0.0) - 1.0);
        all.push_back(std::move(s));
    }

    std::sort(all.begin(), all.end(), [](const Series &a,
                                         const Series &b) {
        return a.errAtZero < b.errAtZero;
    });

    auto print_panel = [&](const char *title, size_t lo, size_t hi) {
        std::cout << title << '\n';
        TableWriter table;
        table.addColumn("Benchmark", Align::Left);
        table.addColumn("slope");
        table.addColumn("intercept");
        table.addColumn("err@(0,1)%");
        table.addColumn("max MPKI");
        for (size_t i = lo; i < hi && i < all.size(); ++i) {
            const auto &s = all[i];
            table.beginRow();
            table.cell(s.name);
            table.cell(s.slope, "%.5f");
            table.cell(s.intercept, "%.4f");
            table.cell(100.0 * s.errAtZero, "%.2f");
            table.cell(*std::max_element(s.mpki.begin(), s.mpki.end()),
                       "%.2f");
        }
        table.print(std::cout);
        std::cout << '\n';
    };

    std::cout << "Figure 5: CPI (normalized to perfect prediction) vs "
                 "MPKI under the predictor sweep\n\n";
    print_panel("(a) most linear benchmarks:", 0, 3);
    print_panel("(b) least linear benchmarks:",
                all.size() >= 3 ? all.size() - 3 : 0, all.size());
    std::cout << "(the regression line passes within a few percent of "
                 "the perfect-prediction point (0,1) even for panel "
                 "(b), as in the paper)\n";

    if (!scale.csvPath.empty()) {
        TableWriter csv;
        csv.addColumn("benchmark", Align::Left);
        csv.addColumn("mpki");
        csv.addColumn("norm_cpi");
        for (const auto &s : all)
            for (size_t i = 0; i < s.mpki.size(); ++i) {
                csv.beginRow();
                csv.cell(s.name);
                csv.cell(s.mpki[i], "%.4f");
                csv.cell(s.normCpi[i], "%.5f");
            }
        csv.writeCsv(scale.csvPath);
    }
    bench::finishTelemetry(scale);
    return 0;
}
