/**
 * @file
 * Figure 7: MPKI of the real branch predictor and of simulated
 * predictors (GAs 2-16 KB, L-TAGE), averaged over the same code
 * reorderings.
 *
 * "The average MPKI over all benchmarks and code reorderings for the
 * real branch predictor is 6.306, compared with 5.729 for a simulated
 * 8KB GAs predictor. A 16KB simulated GAs branch predictor yields
 * 5.542 MPKI." L-TAGE: "On average, L-TAGE yields 3.995 MPKI, compared
 * with 6.306 MPKI for the real Intel predictor, an improvement of 37%."
 */

#include <iostream>

#include "bench_common.hh"
#include "bpred/factory.hh"
#include "pinsim/pinsim.hh"
#include "stats/descriptive.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

int
main(int argc, char **argv)
{
    OptionParser opts("bench_fig7_mpki",
                      "Figure 7: MPKI of real and simulated predictors");
    bench::addScaleOptions(opts, 30, 300000);
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);

    auto specs = bpred::figureCandidateSpecs();
    pinsim::PinSim sim(specs);

    std::cout << "Figure 7: average MPKI over " << scale.layouts
              << " code reorderings (Pin-style simulation; the real "
                 "predictor is measured by the machine's counters)\n\n";

    TableWriter table;
    table.addColumn("Benchmark", Align::Left);
    table.addColumn("real");
    for (size_t i = 0; i < sim.numPredictors(); ++i)
        table.addColumn(sim.predictorName(i));

    TableWriter csv;
    csv.addColumn("benchmark", Align::Left);
    csv.addColumn("predictor", Align::Left);
    csv.addColumn("mpki");

    std::vector<double> mean_by_pred(sim.numPredictors() + 1, 0.0);
    int n_benches = 0;

    for (const auto &entry : workloads::specSuite()) {
        const auto &name = entry.profile.name;
        if (!bench::selected(scale, name))
            continue;
        // Only benchmarks suitable for interferometry (Section 7.2).
        if (!entry.expectSignificant)
            continue;
        Campaign camp(entry.profile, bench::campaignConfig(scale));

        // Real predictor: measured MPKI averaged over the layouts.
        auto samples = camp.measureLayouts(0, scale.layouts);
        std::vector<double> real;
        for (const auto &m : samples)
            real.push_back(m.mpki);
        double real_avg = stats::mean(real);

        // Candidates: one deterministic Pin run per layout.
        std::vector<std::vector<pinsim::PredictorResult>> per_layout;
        for (u32 i = 0; i < scale.layouts; ++i)
            per_layout.push_back(sim.run(camp.program(), camp.trace(),
                                         camp.codeLayoutFor(i)));
        auto avg = pinsim::averageMpki(per_layout);

        table.beginRow();
        table.cell(name);
        table.cell(real_avg, "%.3f");
        csv.beginRow();
        csv.cell(name);
        csv.cell(std::string("real"));
        csv.cell(real_avg, "%.4f");
        mean_by_pred[0] += real_avg;
        for (size_t i = 0; i < avg.size(); ++i) {
            table.cell(avg[i], "%.3f");
            csv.beginRow();
            csv.cell(name);
            csv.cell(sim.predictorName(i));
            csv.cell(avg[i], "%.4f");
            mean_by_pred[i + 1] += avg[i];
        }
        ++n_benches;
    }

    table.beginRow();
    table.cell(std::string("MEAN"));
    for (double &v : mean_by_pred)
        table.cell(v / n_benches, "%.3f");
    table.print(std::cout);

    double real_mean = mean_by_pred[0] / n_benches;
    double ltage_mean = mean_by_pred.back() / n_benches;
    std::cout << "\nL-TAGE improves average MPKI by "
              << strprintf("%.0f%%",
                           100.0 * (real_mean - ltage_mean) / real_mean)
              << " over the real predictor (paper: 37%, 6.306 -> "
                 "3.995)\n";
    std::cout << "(GAs MPKI decreases monotonically with size, as in "
                 "the paper: 8KB 5.729, 16KB 5.542)\n";

    if (!scale.csvPath.empty())
        csv.writeCsv(scale.csvPath);
    bench::finishTelemetry(scale);
    return 0;
}
