/**
 * @file
 * Replay-kernel micro-benchmark: events/sec and layouts/sec of the
 * three per-layout measurement paths, on bench_scaling_parallel's
 * workload (445.gobmk, 300k instructions, 40 layouts by default):
 *
 *   reference      link + heap + runReference() — the event-at-a-time
 *                  pre-plan path (what campaigns paid before the
 *                  compiled ReplayPlan existed);
 *   plan           link + heap + LayoutTables + Machine::replay() with
 *                  a randomized PageMap — the campaign hot path;
 *   plan_identity  same, with the identity PageMap, which replay()
 *                  specializes into a no-translation fast path.
 *
 * Each path's per-layout cost includes everything a campaign pays for
 * that layout (layout construction included), so layouts/sec ratios
 * are end-to-end speedups. Rounds are interleaved across paths —
 * reference, plan, identity, repeat — and the per-path minimum over
 * rounds is reported, so machine-noise epochs hit all paths alike
 * rather than whichever ran last. The reference and plan paths must
 * produce bit-identical cycle counts (the replay golden contract);
 * the bench checks that, making the CI smoke run a correctness probe
 * too.
 *
 * --batch K adds the batched-kernel sweep: batched_k{k} paths for
 * k in {1, 2, 4, 8} with k <= K, each replaying the same layouts as
 * the plan path but k lanes per pass through Machine::replayBatch.
 * Batched checksums must equal the plan path's (same layouts, same
 * results, any grouping) — a mismatch is fatal.
 *
 * --json writes the standard machine-readable report; --smoke shrinks
 * the scale for CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/timing.hh"
#include "exec/threadpool.hh"
#include "layout/heap.hh"
#include "layout/linker.hh"
#include "layout/pagemap.hh"
#include "trace/generator.hh"
#include "trace/replay.hh"
#include "workloads/builder.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;
using Clock = std::chrono::steady_clock;

enum class Path : u32 { Reference, Plan, PlanIdentity, Batched };

/** One measured path: a kind plus, for Batched, its lane count. */
struct PathSpec
{
    Path kind;
    u32 batchK = 0;
    std::string name;
};

PathSpec
makeSpec(Path kind, u32 batch_k = 0)
{
    PathSpec s;
    s.kind = kind;
    s.batchK = batch_k;
    switch (kind) {
      case Path::Reference:
        s.name = "reference";
        break;
      case Path::Plan:
        s.name = "plan";
        break;
      case Path::PlanIdentity:
        s.name = "plan_identity";
        break;
      case Path::Batched:
        s.name = "batched_k" + std::to_string(batch_k);
        break;
    }
    return s;
}

struct PathTiming
{
    double wallMs = 0.0; ///< Best full-batch wall time over rounds.
    u64 checksum = 0;    ///< Sum of per-layout cycle counts.
};

/**
 * Measure one path's full layout batch once: every worker chunk owns a
 * Machine and walks its layouts in ascending order (the pool's static
 * partition keeps this deterministic). Returns wall ms and the cycle
 * checksum used for the reference-vs-plan identity check.
 */
PathTiming
runBatch(const PathSpec &spec, exec::ThreadPool &pool, u32 layouts,
         const trace::Program &prog, const trace::Trace &trace,
         const trace::ReplayPlan &plan, const core::MachineConfig &cfg)
{
    const Path path = spec.kind;
    std::vector<u64> cycles(layouts, 0);
    auto start = Clock::now();
    exec::parallelForChunks(pool, layouts, [&](size_t lo, size_t hi) {
        core::Machine machine(cfg);
        layout::Linker linker;
        auto tablesFor = [&](size_t i) {
            u64 seed = static_cast<u64>(i) + 1;
            auto code =
                linker.link(prog, layout::LayoutKey{seed, true, true});
            layout::HeapKey hk;
            hk.seed = seed;
            hk.randomize = true;
            layout::HeapLayout heap(prog, hk);
            layout::PageMap pages = path == Path::PlanIdentity
                                        ? layout::PageMap()
                                        : layout::PageMap(seed * 31 + 7);
            return trace::LayoutTables(plan, code, heap, pages,
                                       cfg.hierarchy.l1i.lineBytes);
        };
        if (path == Path::Batched) {
            // Same layouts as the plan path, k lanes per pass (the
            // final group of a chunk may be ragged). Tables are built
            // through the direct batched constructor — the same path
            // the campaign uses — so the row measures the production
            // batched pipeline, layout generation included.
            for (size_t i = lo; i < hi; i += spec.batchK) {
                size_t n = std::min<size_t>(spec.batchK, hi - i);
                std::vector<layout::CodeLayout> codes;
                std::vector<layout::HeapLayout> heaps;
                std::vector<trace::BatchedLayoutTables::LaneSource>
                    sources(n);
                codes.reserve(n);
                heaps.reserve(n);
                for (size_t l = 0; l < n; ++l) {
                    u64 seed = static_cast<u64>(i + l) + 1;
                    codes.push_back(linker.link(
                        prog, layout::LayoutKey{seed, true, true}));
                    layout::HeapKey hk;
                    hk.seed = seed;
                    hk.randomize = true;
                    heaps.emplace_back(prog, hk);
                    sources[l] = {&codes[l], &heaps[l],
                                  layout::PageMap(seed * 31 + 7)};
                }
                trace::BatchedLayoutTables batched(
                    plan, sources, cfg.hierarchy.l1i.lineBytes);
                auto res = machine.replayBatch(plan, batched);
                for (size_t l = 0; l < n; ++l)
                    cycles[i + l] = res[l].cycles;
            }
            return;
        }
        for (size_t i = lo; i < hi; ++i) {
            u64 seed = static_cast<u64>(i) + 1;
            core::RunResult res;
            if (path == Path::Reference) {
                auto code = linker.link(
                    prog, layout::LayoutKey{seed, true, true});
                layout::HeapKey hk;
                hk.seed = seed;
                hk.randomize = true;
                layout::HeapLayout heap(prog, hk);
                res = machine.runReference(prog, trace, code, heap,
                                           layout::PageMap(seed * 31 + 7));
            } else {
                auto tables = tablesFor(i);
                res = machine.replay(plan, tables);
            }
            cycles[i] = res.cycles;
        }
    });
    auto stop = Clock::now();
    PathTiming t;
    t.wallMs = std::chrono::duration<double, std::milli>(stop - start).count();
    for (u64 c : cycles)
        t.checksum += c;
    return t;
}

/**
 * Untimed hinted-probe audit for one batched path: replay the full
 * layout batch once on a single Machine with hint counting enabled
 * and return the fraction of hinted way probes the memo answered with
 * a single tag load. Runs outside the timed rounds so the counters
 * cost the measurement nothing (the unconditional increments they
 * replace measured ~3% of batched throughput — see cache::HintStats).
 */
double
measureVerifyRate(const PathSpec &spec, u32 layouts,
                  const trace::Program &prog,
                  const trace::ReplayPlan &plan,
                  const core::MachineConfig &cfg)
{
    core::Machine machine(cfg);
    machine.setHintCounting(true);
    layout::Linker linker;
    for (u32 i = 0; i < layouts; i += spec.batchK) {
        u32 n = std::min(spec.batchK, layouts - i);
        std::vector<layout::CodeLayout> codes;
        std::vector<layout::HeapLayout> heaps;
        std::vector<trace::BatchedLayoutTables::LaneSource> sources(n);
        codes.reserve(n);
        heaps.reserve(n);
        for (u32 l = 0; l < n; ++l) {
            u64 seed = static_cast<u64>(i + l) + 1;
            codes.push_back(
                linker.link(prog, layout::LayoutKey{seed, true, true}));
            layout::HeapKey hk;
            hk.seed = seed;
            hk.randomize = true;
            heaps.emplace_back(prog, hk);
            sources[l] = {&codes[l], &heaps[l],
                          layout::PageMap(seed * 31 + 7)};
        }
        trace::BatchedLayoutTables batched(
            plan, sources, cfg.hierarchy.l1i.lineBytes);
        machine.replayBatch(plan, batched);
    }
    return machine.memoHintStats().rate();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts(
        "bench_micro_replay",
        "events/sec of the reference, plan and identity replay paths");
    bench::addScaleOptions(opts);
    opts.addInt("rounds", 5,
                "interleaved measurement rounds per thread count; the "
                "per-path minimum is reported");
    opts.addInt("batch", 0,
                "batched-kernel sweep: also measure batched_k{k} for "
                "k in {1,2,4,8} up to this lane count (0 = off)");
    opts.addFlag("smoke",
                 "CI scale: 6 layouts, 60k instructions, 2 rounds");
    opts.parse(argc, argv);
    bench::Scale scale = bench::readScale(opts);
    u32 rounds = static_cast<u32>(opts.getInt("rounds"));
    if (rounds < 1)
        fatal("--rounds must be >= 1");
    i64 batch_opt = opts.getInt("batch");
    if (batch_opt < 0 ||
        batch_opt > trace::BatchedLayoutTables::kMaxLanes)
        fatal("--batch must be in [0, %u]",
              trace::BatchedLayoutTables::kMaxLanes);
    const u32 batch_max = static_cast<u32>(batch_opt);
    if (opts.getFlag("smoke")) {
        scale.layouts = 6;
        scale.instructions = 60000;
        rounds = 2;
    }

    auto profile = workloads::specFor("445.gobmk").profile;
    trace::Program prog = workloads::buildProgram(profile);
    trace::Trace trace =
        trace::TraceGenerator(prog, profile.behaviourSeed)
            .makeTrace(scale.instructions);
    trace::ReplayPlan plan(prog, trace);
    auto cfg = core::MachineConfig::xeonE5440();
    const u64 lane_bytes = core::Machine(cfg).laneStateBytes();
    const u64 memo_bytes = core::Machine::laneMemoBytes(plan);

    std::printf("workload: 445.gobmk, %zu events, %llu instructions, "
                "%u layouts, %u rounds\n",
                plan.eventCount(),
                static_cast<unsigned long long>(plan.instCount),
                scale.layouts, rounds);
    std::printf("lane state: %llu bytes (%.2f MiB) microarchitectural "
                "state per replay lane, + %llu bytes way memos\n\n",
                static_cast<unsigned long long>(lane_bytes),
                static_cast<double>(lane_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(memo_bytes));
    std::printf("%-14s %8s %14s %12s %14s\n", "path", "threads",
                "ms/layout", "layouts/sec", "events/sec");

    std::vector<PathSpec> paths = {makeSpec(Path::Reference),
                                   makeSpec(Path::Plan),
                                   makeSpec(Path::PlanIdentity)};
    for (u32 k : {1u, 2u, 4u, 8u})
        if (k <= batch_max)
            paths.push_back(makeSpec(Path::Batched, k));
    std::vector<u32> threadAxis = {1};
    u32 hw = exec::ThreadPool::resolveJobs(scale.jobs);
    if (hw > 1)
        threadAxis.push_back(hw);

    // Hinted-probe audit, once per batched path, before any timing:
    // the scalar paths take no hinted probes, so their rate stays 0.
    std::vector<double> verifyRates(paths.size(), 0.0);
    for (size_t pi = 0; pi < paths.size(); ++pi)
        if (paths[pi].kind == Path::Batched)
            verifyRates[pi] = measureVerifyRate(paths[pi], scale.layouts,
                                                prog, plan, cfg);

    bench::JsonReport report;
    double refSingle = 0.0, planSingle = 0.0, bestBatchSingle = 0.0;
    std::string bestBatchName;
    for (u32 threads : threadAxis) {
        exec::ThreadPool pool(threads);
        std::vector<PathTiming> best(paths.size());
        for (u32 round = 0; round < rounds; ++round) {
            for (size_t pi = 0; pi < paths.size(); ++pi) {
                PathTiming t =
                    runBatch(paths[pi], pool, scale.layouts, prog, trace,
                             plan, cfg);
                if (round == 0 || t.wallMs < best[pi].wallMs)
                    best[pi].wallMs = t.wallMs;
                best[pi].checksum = t.checksum;
            }
        }
        if (best[0].checksum != best[1].checksum)
            fatal("reference and plan paths disagree (checksum %llu vs "
                  "%llu): the replay kernel broke bit-identity",
                  static_cast<unsigned long long>(best[0].checksum),
                  static_cast<unsigned long long>(best[1].checksum));
        // The batched paths replay the plan path's exact layouts, so
        // any grouping must reproduce its checksum bit for bit.
        for (size_t pi = 0; pi < paths.size(); ++pi)
            if (paths[pi].kind == Path::Batched &&
                best[pi].checksum != best[1].checksum)
                fatal("%s checksum %llu != plan checksum %llu: the "
                      "batched kernel broke per-lane bit-identity",
                      paths[pi].name.c_str(),
                      static_cast<unsigned long long>(best[pi].checksum),
                      static_cast<unsigned long long>(best[1].checksum));
        for (size_t pi = 0; pi < paths.size(); ++pi) {
            double perLayoutMs = best[pi].wallMs / scale.layouts;
            double layoutsPerSec = 1000.0 / perLayoutMs;
            double eventsPerSec =
                layoutsPerSec * static_cast<double>(plan.eventCount());
            std::printf("%-14s %8u %14.3f %12.1f %14.3e\n",
                        paths[pi].name.c_str(), threads, perLayoutMs,
                        layoutsPerSec, eventsPerSec);
            if (threads == 1 && paths[pi].kind == Path::Reference)
                refSingle = perLayoutMs;
            if (threads == 1 && paths[pi].kind == Path::Plan)
                planSingle = perLayoutMs;
            if (threads == 1 && paths[pi].kind == Path::Batched &&
                (bestBatchSingle == 0.0 ||
                 perLayoutMs < bestBatchSingle)) {
                bestBatchSingle = perLayoutMs;
                bestBatchName = paths[pi].name;
            }
            char config[128];
            std::snprintf(config, sizeof config,
                          "jobs=%u layouts=%u instructions=%llu rounds=%u",
                          threads, scale.layouts,
                          static_cast<unsigned long long>(
                              scale.instructions),
                          rounds);
            report.add({"micro_replay/" + paths[pi].name, config,
                        layoutsPerSec, eventsPerSec, best[pi].wallMs,
                        lane_bytes, verifyRates[pi]});
        }
    }

    if (planSingle > 0.0)
        std::printf("\nplan vs reference, 1 thread: %.2fx layouts/sec\n",
                    refSingle / planSingle);
    if (bestBatchSingle > 0.0)
        std::printf("%s vs plan, 1 thread: %.2fx layouts/sec\n",
                    bestBatchName.c_str(), planSingle / bestBatchSingle);
    for (size_t pi = 0; pi < paths.size(); ++pi)
        if (paths[pi].kind == Path::Batched)
            std::printf("%s memo verify rate: %.1f%%\n",
                        paths[pi].name.c_str(), 100.0 * verifyRates[pi]);
    if (!scale.jsonPath.empty()) {
        report.write(scale.jsonPath);
        std::printf("wrote JSON report to %s\n", scale.jsonPath.c_str());
    }
    bench::finishTelemetry(scale);
    return 0;
}
