/**
 * @file
 * Figure 4: percent error when estimating perfect and L-TAGE CPI by
 * linear extrapolation from 145 imperfect predictor configurations.
 *
 * "MASE simulates 145 different branch predictor configurations with
 * varying accuracies, as well as a perfect branch predictor. ... The
 * average percent difference was 1.32%. The two worst benchmarks ...
 * show ... 6.0% and 7.5% ... For most benchmarks, L-TAGE ... the
 * average error is less than 0.3%, and the highest error is less than
 * 1%."
 *
 * Our cycle-level model plays MASE's role: only the predictor varies
 * between runs (the single-variable property is tested in
 * tests/test_timing.cc).
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "bpred/factory.hh"
#include "stats/regression.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

int
main(int argc, char **argv)
{
    OptionParser opts("bench_fig4_linearity",
                      "Figure 4: linear-extrapolation error to perfect "
                      "and L-TAGE CPI over a 145-predictor sweep");
    bench::addScaleOptions(opts, 1, 200000);
    opts.addInt("step", 1,
                "use every Nth sweep configuration (1 = all 145)");
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);
    u32 step = static_cast<u32>(opts.getInt("step"));

    auto sweep = bpred::sweepSpecs();
    std::cout << "Figure 4: estimating perfect and L-TAGE CPI from "
              << (sweep.size() + step - 1) / step
              << " imperfect predictors (simulated machine sweep)\n\n";

    struct Row
    {
        std::string name;
        double perfectErr;
        double ltageErr;
        double r2;
    };
    std::vector<Row> rows;

    for (const auto &entry : workloads::specSuite()) {
        const auto &name = entry.profile.name;
        if (!bench::selected(scale, name))
            continue;
        Campaign camp(entry.profile, bench::campaignConfig(scale));
        auto code = camp.codeLayoutFor(0);
        auto heap = camp.heapLayoutFor(0);

        std::vector<double> mpki, cpi;
        for (size_t i = 0; i < sweep.size(); i += step) {
            core::Machine machine(
                core::MachineConfig::xeonE5440().withPredictor(
                    sweep[i]));
            auto r = machine.run(camp.program(), camp.trace(), code,
                                 heap);
            mpki.push_back(r.mpki());
            cpi.push_back(r.cpi());
        }
        stats::LinearFit fit(mpki, cpi);

        core::Machine perfect(
            core::MachineConfig::xeonE5440().withPredictor("perfect"));
        auto pr = perfect.run(camp.program(), camp.trace(), code, heap);
        core::Machine ltage(
            core::MachineConfig::xeonE5440().withPredictor("ltage"));
        auto lr = ltage.run(camp.program(), camp.trace(), code, heap);

        Row row;
        row.name = name;
        row.perfectErr =
            100.0 * (fit.predict(0.0) - pr.cpi()) / pr.cpi();
        row.ltageErr =
            100.0 * (fit.predict(lr.mpki()) - lr.cpi()) / lr.cpi();
        row.r2 = fit.r2();
        rows.push_back(row);
    }

    // The paper orders benchmarks from lowest to highest perfect-error.
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return std::fabs(a.perfectErr) < std::fabs(b.perfectErr);
    });

    TableWriter table;
    table.addColumn("Benchmark", Align::Left);
    table.addColumn("perfect err%");
    table.addColumn("L-TAGE err%");
    table.addColumn("sweep r2");
    double sum_p = 0, sum_l = 0, max_p = 0, max_l = 0;
    for (const auto &row : rows) {
        table.beginRow();
        table.cell(row.name);
        table.cell(row.perfectErr, "%+.2f");
        table.cell(row.ltageErr, "%+.2f");
        table.cell(row.r2, "%.3f");
        sum_p += std::fabs(row.perfectErr);
        sum_l += std::fabs(row.ltageErr);
        max_p = std::max(max_p, std::fabs(row.perfectErr));
        max_l = std::max(max_l, std::fabs(row.ltageErr));
    }
    table.print(std::cout);
    std::cout << "\naverage |error|: perfect "
              << strprintf("%.2f%%", sum_p / rows.size()) << ", L-TAGE "
              << strprintf("%.2f%%", sum_l / rows.size())
              << "   (paper: 1.32% and <0.3%)\n";
    std::cout << "worst |error|:   perfect "
              << strprintf("%.2f%%", max_p) << ", L-TAGE "
              << strprintf("%.2f%%", max_l)
              << "   (paper: 7.5% and <1%)\n";

    if (!scale.csvPath.empty()) {
        TableWriter csv;
        csv.addColumn("benchmark", Align::Left);
        csv.addColumn("perfect_err_pct");
        csv.addColumn("ltage_err_pct");
        csv.addColumn("sweep_r2");
        for (const auto &row : rows) {
            csv.beginRow();
            csv.cell(row.name);
            csv.cell(row.perfectErr, "%.4f");
            csv.cell(row.ltageErr, "%.4f");
            csv.cell(row.r2, "%.4f");
        }
        csv.writeCsv(scale.csvPath);
    }
    bench::finishTelemetry(scale);
    return 0;
}
