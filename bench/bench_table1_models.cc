/**
 * @file
 * Table 1: per-benchmark least-squares models relating branch
 * prediction to performance — slope, y-intercept, and the 95%
 * prediction interval at 0 MPKI (perfect prediction) — plus the
 * Sections 4.6/6.3 significance story: sample-count escalation in
 * batches of 100 until the t-test rejects, with 20 of the paper's 23
 * benchmarks passing and three lacking MPKI range.
 */

#include <iostream>

#include "bench_common.hh"
#include "interferometry/model.hh"
#include "interferometry/report.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

int
main(int argc, char **argv)
{
    OptionParser opts("bench_table1_models",
                      "Table 1: regression models per benchmark, with "
                      "escalation and significance gating");
    bench::addScaleOptions(opts);
    opts.addInt("max-layouts", 0,
                "escalation cap (0 = 3x the initial batch, like the "
                "paper's 100->300)");
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);
    u32 max_layouts = static_cast<u32>(opts.getInt("max-layouts"));
    if (max_layouts == 0)
        max_layouts = scale.layouts * 3;

    std::cout << "Table 1 reproduction: initial batch " << scale.layouts
              << " layouts, escalating by " << scale.layouts << " to "
              << max_layouts << " (paper: 100 -> 300)\n\n";

    std::vector<Table1Row> rows;
    int significant = 0, total = 0;
    std::vector<std::string> escalated, failed;

    TableWriter csv;
    csv.addColumn("benchmark", Align::Left);
    csv.addColumn("slope");
    csv.addColumn("intercept");
    csv.addColumn("pi_low");
    csv.addColumn("pi_high");
    csv.addColumn("layouts");
    csv.addColumn("significant");

    for (const auto &entry : workloads::specSuite()) {
        const auto &name = entry.profile.name;
        if (!bench::selected(scale, name))
            continue;
        auto cfg = bench::campaignConfig(scale);
        cfg.escalationStep = scale.layouts;
        cfg.maxLayouts = max_layouts;
        Campaign camp(entry.profile, cfg);
        auto res = camp.run();

        PerformanceModel model(name, res.samples);
        auto row = model.table1Row();
        row.significant = res.significant; // includes the range gate
        rows.push_back(row);

        ++total;
        if (res.significant)
            ++significant;
        else
            failed.push_back(name + (res.enoughMpkiRange
                                         ? " (t-test)"
                                         : " (not enough MPKI range)"));
        if (res.layoutsUsed > scale.layouts)
            escalated.push_back(
                name + strprintf(" (%u)", res.layoutsUsed));

        csv.beginRow();
        csv.cell(name);
        csv.cell(row.slope, "%.5f");
        csv.cell(row.intercept, "%.5f");
        csv.cell(row.perfectLow, "%.5f");
        csv.cell(row.perfectHigh, "%.5f");
        csv.cell(static_cast<long long>(res.layoutsUsed));
        csv.cell(static_cast<long long>(res.significant ? 1 : 0));
    }

    std::cout << significant << " of " << total
              << " benchmarks reject the null hypothesis \"there is no "
                 "correlation\" at p <= 0.05 (paper: 20 of 23)\n";
    if (!escalated.empty()) {
        std::cout << "benchmarks needing escalation:";
        for (const auto &s : escalated)
            std::cout << ' ' << s;
        std::cout << '\n';
    }
    if (!failed.empty()) {
        std::cout << "excluded:";
        for (const auto &s : failed)
            std::cout << ' ' << s;
        std::cout << '\n';
    }
    std::cout << '\n';

    auto table = makeTable1(rows);
    table.print(std::cout);
    std::cout << "\n(Low/High: 95% prediction interval for perfect "
                 "prediction, i.e. 0 MPKI; paper Table 1 slopes run "
                 "0.016-0.041 with outliers 0.373 (zeusmp) and 0.516 "
                 "(GemsFDTD))\n";

    if (!scale.csvPath.empty())
        csv.writeCsv(scale.csvPath);
    bench::finishTelemetry(scale);
    return 0;
}
