/**
 * @file
 * Ablation: the machine-model features DESIGN.md calls out.
 *
 * Each row disables one modeled mechanism and re-runs a two-benchmark
 * campaign, showing which mechanism carries which observable:
 *
 *  - next-line I-prefetch: without it, sequential fetch misses flood
 *    the L1I counter and CPI rises;
 *  - physical page mapping: without it, the L2 loses all placement
 *    sensitivity (L2-MPKI variance collapses to zero);
 *  - warmup: without it, cold-start compulsory misses pollute every
 *    counter;
 *  - L2 random replacement: with true LRU the capacity behaviour turns
 *    all-or-nothing.
 */

#include <iostream>

#include "bench_common.hh"
#include "interferometry/model.hh"
#include "stats/descriptive.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

namespace
{

struct Variant
{
    const char *label;
    bool prefetch;
    bool physicalPages;
    double warmup;
    cache::Replacement l2Replacement;
};

void
runVariant(const Variant &v, const std::string &bench_name,
           const bench::Scale &scale, TableWriter &table)
{
    auto cfg = bench::campaignConfig(scale);
    cfg.randomizeHeap = true;
    cfg.physicalPages = v.physicalPages;
    cfg.machine.hierarchy.nextLinePrefetch = v.prefetch;
    cfg.machine.warmupFraction = v.warmup;
    cfg.machine.hierarchy.l2.replacement = v.l2Replacement;
    Campaign camp(workloads::specFor(bench_name).profile, cfg);
    auto samples = camp.measureLayouts(0, scale.layouts);
    PerformanceModel model(bench_name, samples);

    auto l2 = column(samples, &core::Measurement::l2Mpki);
    table.beginRow();
    table.cell(std::string(v.label));
    table.cell(bench_name);
    table.cell(model.meanCpi(), "%.3f");
    table.cell(model.meanL1iMpki(), "%.3f");
    table.cell(model.meanL2Mpki(), "%.3f");
    table.cell(stats::sampleStdDev(l2), "%.4f");
    table.cell(model.branchModel().fit.r2(), "%.3f");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("bench_ablation_machine",
                      "ablation: prefetch, physical pages, warmup, L2 "
                      "replacement");
    // L2-capacity variance and I-prefetch coverage are long-run,
    // large-footprint phenomena; default to scales where they show.
    bench::addScaleOptions(opts, 14, 8000000);
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);

    const Variant variants[] = {
        {"full model", true, true, 0.25, cache::Replacement::Random},
        {"no I-prefetch", false, true, 0.25, cache::Replacement::Random},
        {"virtual-indexed L2", true, false, 0.25,
         cache::Replacement::Random},
        {"no warmup", true, true, 0.0, cache::Replacement::Random},
        {"L2 true LRU", true, true, 0.25, cache::Replacement::Lru},
    };

    std::cout << "Machine-model ablation (" << scale.layouts
              << " layouts, " << scale.instructions
              << " instructions, heap randomization on)\n\n";

    TableWriter table;
    table.addColumn("variant", Align::Left);
    table.addColumn("benchmark", Align::Left);
    table.addColumn("CPI");
    table.addColumn("L1I/KI");
    table.addColumn("L2/KI");
    table.addColumn("sd L2/KI");
    table.addColumn("branch r2");

    for (const auto &v : variants)
        for (const char *name : {"403.gcc", "454.calculix"})
            if (bench::selected(scale, name))
                runVariant(v, name, scale, table);

    table.print(std::cout);
    std::cout << "\nKey rows: 'virtual-indexed L2' collapses the L2 "
                 "variance (sd column) that Figure 3(b) depends on; "
                 "'no I-prefetch' inflates demand L1I misses on the "
                 "big-text benchmark; 'no warmup' inflates every miss "
                 "counter with cold-start transients; 'L2 true LRU' "
                 "narrows the placement sensitivity that random "
                 "(pseudo-LRU-like) replacement spreads smoothly.\n";
    bench::finishTelemetry(scale);
    return 0;
}
