/**
 * @file
 * Extension: instruction-cache interferometry (the paper's future
 * work).
 *
 * Section 6.5: "In future work we will study the impact of other events
 * dependent on code and data placement." This bench carries the
 * technique one step further than the paper: a purpose-built
 * I-cache-stressing workload (hot code footprint well beyond the 32 KB
 * L1I) is measured under code reordering, and CPI is regressed on L1I
 * misses exactly the way the paper regresses on MPKI — single-event
 * model, t-test gate, multi-event blame split.
 */

#include <iostream>

#include "bench_common.hh"
#include "interferometry/model.hh"
#include "interferometry/report.hh"
#include "stats/descriptive.hh"
#include "util/table.hh"
#include "workloads/profile.hh"

using namespace interf;
using namespace interf::interferometry;

namespace
{

/** A gcc-on-steroids profile: enormous hot text, mild everything else. */
workloads::WorkloadProfile
icacheStressProfile()
{
    auto p = workloads::defaultProfile("icache-stress");
    p.structureSeed = 0xfeed1;
    p.behaviourSeed = 0xfeed2;
    p.procedures = 800;
    p.hotProcedures = 600;
    p.objectFiles = 64;
    p.meanBlocksPerProc = 7;
    p.meanInstsPerBlock = 6;
    p.callDensity = 0.30;      // wide call fan-out: large live footprint
    p.indirectDensity = 0.05;  // jumpy dispatch, prefetch-hostile
    p.condFraction = 0.30;
    p.periodMin = 3;           // short loops: execution keeps moving
    p.periodMax = 8;
    p.fracBiased = 0.55;
    p.fracPeriodic = 0.33;
    p.fracHistory = 0.06;
    p.fracRandom = 0.04;
    p.biasMin = 0.95;
    p.biasMax = 0.995;
    p.loadsPerInst = 0.18;
    p.storesPerInst = 0.06;
    p.l1WorkingSet = 8 << 10;
    p.l2WorkingSet = 256 << 10;
    p.fracL1 = 0.97;
    p.fracL2 = 0.03;
    p.meanExtraExecCycles = 0.4;
    p.validate();
    return p;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("bench_ext_icache",
                      "extension: interferometry against the L1 "
                      "instruction cache (paper future work)");
    bench::addScaleOptions(opts, 40, 400000);
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);

    auto profile = icacheStressProfile();
    Campaign camp(profile, bench::campaignConfig(scale));
    auto samples = camp.measureLayouts(0, scale.layouts);
    PerformanceModel model(profile.name, samples);

    std::cout << "I-cache interferometry on a " << scale.layouts
              << "-layout campaign of an icache-stressing workload\n\n";

    auto l1i = column(samples, &core::Measurement::l1iMpki);
    std::cout << "  hot text ~"
              << (camp.program().totalCodeBytes() >> 10)
              << " KB vs a 32 KB L1I; observed L1I misses/KI in ["
              << strprintf("%.2f", stats::minValue(l1i)) << ", "
              << strprintf("%.2f", stats::maxValue(l1i)) << "]\n\n";

    // The paper's single-event model, aimed at the I-cache.
    const auto &fit = model.l1iModel().fit;
    const auto &test = model.l1iModel().test;
    std::cout << "  CPI = " << strprintf("%.5f", fit.slope())
              << " * L1I-MPKI + " << strprintf("%.4f", fit.intercept())
              << "  (r2 " << strprintf("%.3f", fit.r2()) << ", t "
              << strprintf("%.2f", test.statistic) << ", "
              << (test.significantAt(0.05) ? "significant"
                                           : "NOT significant")
              << ")\n";
    auto pi = fit.predictionInterval(0.0);
    std::cout << "  extrapolated perfect-I-cache CPI: "
              << strprintf("%.4f [%.4f, %.4f]", fit.predict(0.0), pi.lo,
                           pi.hi)
              << '\n';
    double improvement =
        (model.meanCpi() - fit.predict(0.0)) / model.meanCpi();
    std::cout << "  -> a conflict-free I-cache would be worth "
              << strprintf("%.1f%%", 100 * improvement) << "\n\n";

    // Blame split across the three events plus the combined model.
    TableWriter table;
    table.addColumn("event", Align::Left);
    table.addColumn("r2");
    table.beginRow();
    table.cell(std::string("branch MPKI"));
    table.cell(model.branchModel().fit.r2(), "%.3f");
    table.beginRow();
    table.cell(std::string("L1I misses"));
    table.cell(model.l1iModel().fit.r2(), "%.3f");
    table.beginRow();
    table.cell(std::string("L2 misses"));
    table.cell(model.l2Model().fit.r2(), "%.3f");
    table.beginRow();
    table.cell(std::string("combined"));
    table.cell(model.combinedFit().r2(), "%.3f");
    table.print(std::cout);

    std::cout << "\n(On this workload the blame flips: the I-cache, not "
                 "the branch predictor, explains most of the layout-"
                 "induced CPI variance — the technique generalizes to "
                 "any address-hashed structure, as the paper "
                 "anticipates.)\n";
    bench::finishTelemetry(scale);
    return 0;
}
