/**
 * @file
 * Ablation: the measurement protocol (Section 5.5/5.7 methodology).
 *
 * The paper runs each configuration five times on a quiesced, pinned
 * system and keeps the median-cycle run. This bench quantifies what
 * each of those choices buys: it repeats the perlbench campaign under
 * degraded protocols and reports how the regression model's quality
 * decays — slope error against the noise-free ground truth, r², and
 * the width of the perfect-prediction interval.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "interferometry/model.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

namespace
{

struct Protocol
{
    const char *label;
    u32 runsPerGroup;
    bool quiescent;
    double jitterSigma;
    double spikeProb;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("bench_ablation_protocol",
                      "ablation: runs-per-group, median filtering and "
                      "system quiescing");
    bench::addScaleOptions(opts, 40, 300000);
    opts.addString("benchmark", "400.perlbench", "benchmark to study");
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);
    const std::string name = opts.getString("benchmark");
    const auto &profile = workloads::specFor(name).profile;

    // Ground truth: a noise-free campaign.
    double true_slope, true_intercept;
    {
        auto cfg = bench::campaignConfig(scale);
        cfg.runner.noise = core::NoiseConfig::none();
        cfg.runner.runsPerGroup = 1;
        Campaign camp(profile, cfg);
        PerformanceModel model(name,
                               camp.measureLayouts(0, scale.layouts));
        true_slope = model.branchModel().fit.slope();
        true_intercept = model.branchModel().fit.intercept();
    }

    std::cout << "Protocol ablation on " << name << " (" << scale.layouts
              << " layouts); noise-free truth: slope "
              << strprintf("%.5f", true_slope) << ", intercept "
              << strprintf("%.4f", true_intercept) << "\n\n";

    const Protocol protocols[] = {
        {"paper: median-of-5, quiesced", 5, true, 0.002, 0.04},
        {"median-of-3, quiesced", 3, true, 0.002, 0.04},
        {"single run, quiesced", 1, true, 0.002, 0.04},
        {"median-of-5, noisy system", 5, false, 0.002, 0.04},
        {"single run, noisy system", 1, false, 0.002, 0.04},
    };

    TableWriter table;
    table.addColumn("protocol", Align::Left);
    table.addColumn("slope");
    table.addColumn("slope err%");
    table.addColumn("r2");
    table.addColumn("t");
    table.addColumn("PI width @0");

    for (const auto &proto : protocols) {
        auto cfg = bench::campaignConfig(scale);
        cfg.runner.runsPerGroup = proto.runsPerGroup;
        cfg.runner.noise.quiescent = proto.quiescent;
        cfg.runner.noise.jitterSigma = proto.jitterSigma;
        cfg.runner.noise.spikeProb = proto.spikeProb;
        Campaign camp(profile, cfg);
        PerformanceModel model(name,
                               camp.measureLayouts(0, scale.layouts));
        const auto &fit = model.branchModel().fit;
        table.beginRow();
        table.cell(std::string(proto.label));
        table.cell(fit.slope(), "%.5f");
        table.cell(100.0 * (fit.slope() - true_slope) /
                       std::fabs(true_slope),
                   "%+.1f");
        table.cell(fit.r2(), "%.3f");
        table.cell(model.branchModel().test.statistic, "%.2f");
        table.cell(model.predictionInterval(0.0).width(), "%.4f");
    }
    table.print(std::cout);
    std::cout << "\nReading the table: measurement noise attenuates r² "
                 "and widens the perfect-prediction interval; the "
                 "median-of-five protocol recovers most of the loss, "
                 "and quiescing the system is worth more than extra "
                 "repetitions — the paper's §5.5 choices in numbers.\n";
    bench::finishTelemetry(scale);
    return 0;
}
