/**
 * @file
 * Component micro-benchmarks (google-benchmark): throughput of the
 * pieces the experiment harnesses hammer — predictor lookups, cache
 * accesses, trace generation, linking, and a full timing run — so
 * performance regressions in the substrate are visible.
 */

#include <benchmark/benchmark.h>

#include "bpred/factory.hh"
#include "cache/cache.hh"
#include "core/timing.hh"
#include "layout/heap.hh"
#include "layout/linker.hh"
#include "trace/generator.hh"
#include "util/random.hh"
#include "workloads/builder.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;

void
BM_PredictorLookup(benchmark::State &state, const char *spec)
{
    auto pred = bpred::makePredictor(spec);
    Rng rng(1);
    std::vector<Addr> pcs;
    std::vector<bool> outcomes;
    for (int i = 0; i < 4096; ++i) {
        pcs.push_back(0x400000 + (rng.next() & 0xffff));
        outcomes.push_back(rng.bernoulli(0.7));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pred->predictAndTrain(pcs[i & 4095], outcomes[i & 4095]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_PredictorLookup, bimodal, "bimodal:2048");
BENCHMARK_CAPTURE(BM_PredictorLookup, gshare, "gshare:8192:12");
BENCHMARK_CAPTURE(BM_PredictorLookup, xeon_hybrid, "xeon");
BENCHMARK_CAPTURE(BM_PredictorLookup, ltage, "ltage");

void
BM_CacheAccess(benchmark::State &state)
{
    cache::Cache cache({"bm", 32 << 10, 8, 64});
    Rng rng(2);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(rng.next() & 0xfffff);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i & 4095]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TraceGeneration(benchmark::State &state)
{
    auto prog = workloads::buildProgram(
        workloads::defaultProfile("bm"));
    u64 insts = 0;
    for (auto _ : state) {
        trace::TraceGenerator gen(prog, 7);
        auto trace = gen.makeTrace(100000);
        insts += trace.instCount;
        benchmark::DoNotOptimize(trace.events.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void
BM_Link(benchmark::State &state)
{
    auto prog = workloads::buildProgram(
        workloads::specFor("403.gcc").profile);
    layout::Linker linker;
    u64 seed = 0;
    for (auto _ : state) {
        auto layout =
            linker.link(prog, layout::LayoutKey{seed++, true, true});
        benchmark::DoNotOptimize(layout.textSize());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Link);

void
BM_TimingRun(benchmark::State &state)
{
    auto prog = workloads::buildProgram(
        workloads::defaultProfile("bm"));
    trace::TraceGenerator gen(prog, 7);
    auto trace = gen.makeTrace(100000);
    layout::Linker linker;
    auto code = linker.link(prog, layout::LayoutKey{1, true, true});
    layout::HeapLayout heap(prog, layout::HeapKey::deterministic());
    core::Machine machine(core::MachineConfig::xeonE5440());
    u64 insts = 0;
    for (auto _ : state) {
        auto res = machine.run(prog, trace, code, heap);
        insts += res.instructions;
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_TimingRun)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
