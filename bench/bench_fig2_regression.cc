/**
 * @file
 * Figure 2: MPKI-vs-CPI regression with 95% confidence and prediction
 * intervals for 400.perlbench and 471.omnetpp, plus the Section 1.4
 * what-if predictions for perlbench.
 *
 * Paper reference line: CPI = 0.02799 * MPKI + 0.51667 (perlbench);
 * perfect prediction CPI 0.517 +- 0.029 (26.0% +- 4.2% better); halving
 * MPKI improves CPI 13.0% +- 2.2%; a 10% CPI gain needs a 38% MPKI
 * reduction. omnetpp: perfect-prediction CPI in [1.86, 1.94].
 */

#include <iostream>

#include "bench_common.hh"
#include "interferometry/model.hh"
#include "interferometry/predict.hh"
#include "interferometry/report.hh"
#include "stats/descriptive.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

namespace
{

void
reportBenchmark(const std::string &name, const bench::Scale &scale,
                TableWriter &csv)
{
    Campaign camp(workloads::specFor(name).profile,
                  bench::campaignConfig(scale));
    auto samples = camp.measureLayouts(0, scale.layouts);
    PerformanceModel model(name, samples);

    std::cout << "== " << name << " (" << scale.layouts
              << " reorderings)\n";
    std::cout << "   " << regressionLine(model) << '\n';
    std::cout << "   observed MPKI range ["
              << strprintf("%.3f", stats::minValue(column(
                                       samples, &core::Measurement::mpki)))
              << ", "
              << strprintf("%.3f", stats::maxValue(column(
                                       samples, &core::Measurement::mpki)))
              << "], mean CPI "
              << strprintf("%.3f", model.meanCpi()) << "\n\n";

    TableWriter table;
    table.addColumn("MPKI");
    table.addColumn("fit CPI");
    table.addColumn("CI lo");
    table.addColumn("CI hi");
    table.addColumn("PI lo");
    table.addColumn("PI hi");
    double lo = 0.0;
    double hi = stats::maxValue(
                    column(samples, &core::Measurement::mpki)) * 1.1;
    for (int i = 0; i <= 10; ++i) {
        double x = lo + (hi - lo) * i / 10.0;
        auto ci = model.confidenceInterval(x);
        auto pi = model.predictionInterval(x);
        table.beginRow();
        table.cell(x, "%.3f");
        table.cell(model.predictCpi(x), "%.4f");
        table.cell(ci.lo, "%.4f");
        table.cell(ci.hi, "%.4f");
        table.cell(pi.lo, "%.4f");
        table.cell(pi.hi, "%.4f");

        csv.beginRow();
        csv.cell(name);
        csv.cell(x, "%.4f");
        csv.cell(model.predictCpi(x), "%.5f");
        csv.cell(ci.lo, "%.5f");
        csv.cell(ci.hi, "%.5f");
        csv.cell(pi.lo, "%.5f");
        csv.cell(pi.hi, "%.5f");
    }
    table.print(std::cout);
    std::cout << '\n';

    // Section 1.4 what-ifs (the paper quotes these for perlbench).
    PredictorEvaluator eval(model, model.meanCpi());
    auto perfect = eval.evaluatePerfect();
    std::cout << "   perfect predictor: CPI "
              << strprintf("%.3f [%.3f, %.3f]", perfect.cpi,
                           perfect.pi.lo, perfect.pi.hi)
              << ", improvement "
              << strprintf("%.1f%% [%.1f%%, %.1f%%]",
                           100 * perfect.improvementVsReal,
                           100 * perfect.improvementInterval.lo,
                           100 * perfect.improvementInterval.hi)
              << '\n';
    auto half = eval.evaluate("half-mpki", model.meanMpki() / 2.0);
    std::cout << "   halving MPKI ("
              << strprintf("%.2f -> %.2f", model.meanMpki(),
                           model.meanMpki() / 2)
              << "): CPI " << strprintf("%.3f", half.cpi)
              << ", improvement "
              << strprintf("%.1f%%", 100 * half.improvementVsReal)
              << '\n';
    std::cout << "   a 10% CPI improvement requires a "
              << strprintf("%.0f%%",
                           100 * eval.mpkiReductionForCpiGain(0.10))
              << " reduction in mispredictions\n\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("bench_fig2_regression",
                      "Figure 2: CPI~MPKI regression with intervals "
                      "(perlbench, omnetpp)");
    bench::addScaleOptions(opts, 60, 300000);
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);

    std::cout << "Figure 2: performance vs branch prediction accuracy\n"
              << "(paper: perlbench CPI = 0.02799*MPKI + 0.51667; "
                 "omnetpp perfect CPI in [1.86, 1.94])\n\n";

    TableWriter csv;
    csv.addColumn("benchmark", Align::Left);
    csv.addColumn("mpki");
    csv.addColumn("fit_cpi");
    csv.addColumn("ci_lo");
    csv.addColumn("ci_hi");
    csv.addColumn("pi_lo");
    csv.addColumn("pi_hi");

    for (const char *name : {"400.perlbench", "471.omnetpp"})
        if (bench::selected(scale, name))
            reportBenchmark(name, scale, csv);

    if (!scale.csvPath.empty())
        csv.writeCsv(scale.csvPath);
    bench::finishTelemetry(scale);
    return 0;
}
