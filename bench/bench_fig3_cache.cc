/**
 * @file
 * Figure 3: modeling cache effects on performance with heap
 * randomization, for 454.calculix.
 *
 * "The data reordering is done using a specially crafted memory
 * allocator that randomizes the placement of heap-allocated data. ...
 * Figure 3 shows that performance varies linearly with L1 and L2 cache
 * misses for the SPEC CPU 2006 benchmark 454.calculix", with confidence
 * and prediction intervals; "the experiments were done using heap
 * randomization combined with code reordering."
 */

#include <iostream>

#include "bench_common.hh"
#include "interferometry/model.hh"
#include "stats/descriptive.hh"
#include "stats/hypothesis.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

namespace
{

void
reportFit(const char *label, const std::vector<double> &xs,
          const std::vector<double> &cpi, TableWriter &csv,
          const std::string &bench_name)
{
    double cv = stats::mean(xs) > 0
                    ? stats::sampleStdDev(xs) / stats::mean(xs)
                    : 0.0;
    if (cv < 1e-3) {
        std::cout << "  CPI ~ " << label
                  << ": miss counts are layout-invariant here (cv "
                  << strprintf("%.2g", cv)
                  << "); no meaningful regression\n\n";
        return;
    }
    stats::LinearFit fit(xs, cpi);
    auto test = stats::correlationTTest(fit.r(), xs.size());
    std::cout << "  CPI ~ " << label << ": slope "
              << strprintf("%.5f", fit.slope()) << ", intercept "
              << strprintf("%.4f", fit.intercept()) << ", r2 "
              << strprintf("%.3f", fit.r2()) << ", t "
              << strprintf("%.2f", test.statistic)
              << (test.significantAt(0.05) ? " (significant)"
                                           : " (not significant)")
              << '\n';

    TableWriter table;
    table.addColumn(label);
    table.addColumn("fit CPI");
    table.addColumn("CI lo");
    table.addColumn("CI hi");
    table.addColumn("PI lo");
    table.addColumn("PI hi");
    double lo = stats::minValue(xs) * 0.95;
    double hi = stats::maxValue(xs) * 1.05;
    for (int i = 0; i <= 8; ++i) {
        double x = lo + (hi - lo) * i / 8.0;
        auto ci = fit.confidenceInterval(x);
        auto pi = fit.predictionInterval(x);
        table.beginRow();
        table.cell(x, "%.3f");
        table.cell(fit.predict(x), "%.4f");
        table.cell(ci.lo, "%.4f");
        table.cell(ci.hi, "%.4f");
        table.cell(pi.lo, "%.4f");
        table.cell(pi.hi, "%.4f");

        csv.beginRow();
        csv.cell(bench_name);
        csv.cell(std::string(label));
        csv.cell(x, "%.4f");
        csv.cell(fit.predict(x), "%.5f");
        csv.cell(pi.lo, "%.5f");
        csv.cell(pi.hi, "%.5f");
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("bench_fig3_cache",
                      "Figure 3: CPI vs L1/L2 misses under heap "
                      "randomization (calculix)");
    // L2-capacity effects are a steady-state phenomenon: panel (b)
    // needs long runs (the paper measured ~2-minute executions).
    bench::addScaleOptions(opts, 40, 20000000);
    opts.addString("benchmark", "454.calculix",
                   "suite benchmark to analyze");
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);

    const std::string name = opts.getString("benchmark");
    std::cout << "Figure 3: cache effects on performance for " << name
              << " (heap randomization + code reordering, "
              << scale.layouts << " layouts)\n\n";

    auto cfg = bench::campaignConfig(scale);
    cfg.randomizeHeap = true; // the DieHard-style allocator
    Campaign camp(workloads::specFor(name).profile, cfg);
    auto samples = camp.measureLayouts(0, scale.layouts);

    auto cpi = column(samples, &core::Measurement::cpi);
    auto l1d = column(samples, &core::Measurement::l1dMpki);
    auto l2 = column(samples, &core::Measurement::l2Mpki);

    std::cout << "  mean CPI " << strprintf("%.3f", stats::mean(cpi))
              << ", L1D misses/KI "
              << strprintf("%.2f", stats::mean(l1d)) << " (sd "
              << strprintf("%.3f", stats::sampleStdDev(l1d))
              << "), L2 misses/KI " << strprintf("%.3f", stats::mean(l2))
              << " (sd " << strprintf("%.4f", stats::sampleStdDev(l2))
              << ")\n\n";

    TableWriter csv;
    csv.addColumn("benchmark", Align::Left);
    csv.addColumn("event", Align::Left);
    csv.addColumn("x");
    csv.addColumn("fit_cpi");
    csv.addColumn("pi_lo");
    csv.addColumn("pi_hi");

    std::cout << "(a) L1 data cache misses:\n";
    reportFit("L1D-MPKI", l1d, cpi, csv, name);
    std::cout << "(b) L2 cache misses:\n";
    reportFit("L2-MPKI", l2, cpi, csv, name);

    if (!scale.csvPath.empty())
        csv.writeCsv(scale.csvPath);
    bench::finishTelemetry(scale);
    return 0;
}
