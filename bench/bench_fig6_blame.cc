/**
 * @file
 * Figure 6: "assigning blame" — cumulative r^2 of CPI against branch
 * mispredictions, L1I misses and L2 misses, plus the combined
 * multi-linear model, per benchmark.
 *
 * "On average, 27% of the CPI difference between different code
 * reorderings can be explained by branch misprediction. Some benchmarks
 * are more sensitive; for instance, 84.2% of the CPI variance of
 * 462.libquantum is due to branch mispredictions." The combined bar
 * does not reach the sum of the three because the events are not
 * independent (Section 6.1).
 */

#include <iostream>

#include "bench_common.hh"
#include "interferometry/model.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::interferometry;

int
main(int argc, char **argv)
{
    OptionParser opts("bench_fig6_blame",
                      "Figure 6: r^2 blame assignment per event + "
                      "combined model");
    bench::addScaleOptions(opts);
    opts.parse(argc, argv);
    auto scale = bench::readScale(opts);

    std::cout << "Figure 6: fraction of CPI variance (r^2) explained "
                 "by each event over " << scale.layouts
              << " code reorderings\n\n";

    TableWriter table;
    table.addColumn("Benchmark", Align::Left);
    table.addColumn("branch r2");
    table.addColumn("L1I r2");
    table.addColumn("L2 r2");
    table.addColumn("combined r2");
    table.addColumn("F-test p");

    double sum_branch = 0, sum_l1i = 0, sum_l2 = 0, sum_comb = 0;
    int n = 0;
    TableWriter csv;
    csv.addColumn("benchmark", Align::Left);
    csv.addColumn("branch_r2");
    csv.addColumn("l1i_r2");
    csv.addColumn("l2_r2");
    csv.addColumn("combined_r2");

    for (const auto &entry : workloads::specSuite()) {
        const auto &name = entry.profile.name;
        if (!bench::selected(scale, name))
            continue;
        Campaign camp(entry.profile, bench::campaignConfig(scale));
        auto samples = camp.measureLayouts(0, scale.layouts);
        PerformanceModel model(name, samples);

        // The typed Figure-6 path: the same BlameVector the layout
        // optimizer consumes, not a re-derivation from the raw fits.
        const BlameVector blame = model.blame();
        table.beginRow();
        table.cell(name);
        table.cell(blame.branch, "%.3f");
        table.cell(blame.l1i, "%.3f");
        table.cell(blame.l2, "%.3f");
        table.cell(blame.combined, "%.3f");
        table.cell(blame.combinedP, "%.4f");
        csv.beginRow();
        csv.cell(name);
        csv.cell(blame.branch, "%.4f");
        csv.cell(blame.l1i, "%.4f");
        csv.cell(blame.l2, "%.4f");
        csv.cell(blame.combined, "%.4f");
        sum_branch += blame.branch;
        sum_l1i += blame.l1i;
        sum_l2 += blame.l2;
        sum_comb += blame.combined;
        ++n;
    }
    table.beginRow();
    table.cell(std::string("AVERAGE"));
    table.cell(sum_branch / n, "%.3f");
    table.cell(sum_l1i / n, "%.3f");
    table.cell(sum_l2 / n, "%.3f");
    table.cell(sum_comb / n, "%.3f");
    table.cell(std::string("-"));
    table.print(std::cout);

    std::cout << "\n(paper: branch misprediction explains 27% of CPI "
                 "variance on average; the combined bar is below the "
                 "sum of the three because the events are not "
                 "independent)\n";
    if (!scale.csvPath.empty())
        csv.writeCsv(scale.csvPath);
    bench::finishTelemetry(scale);
    return 0;
}
