/**
 * @file
 * Shared plumbing for the figure/table reproduction benches.
 *
 * Every bench accepts the same scale flags: the defaults regenerate the
 * figure in seconds at reduced scale; --layouts 100 --instructions
 * 1000000 (and up) approach the paper's scale. --csv writes the
 * machine-readable series next to the printed table.
 */

#ifndef INTERF_BENCH_COMMON_HH
#define INTERF_BENCH_COMMON_HH

#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "interferometry/campaign.hh"
#include "telemetry/progress.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace interf::bench
{

/** Scale parameters shared by all benches. */
struct Scale
{
    u32 layouts = 40;
    u64 instructions = 300000;
    u32 jobs = 0; ///< Measurement worker threads (0 = all hardware).
    std::string storeDir; ///< Campaign artifact store (empty = off).
    std::string csvPath;
    std::string jsonPath; ///< Machine-readable result file (empty = off).
    std::string telemetryDir; ///< --telemetry-out: traces + manifests.
    std::string only; ///< Restrict to benchmarks containing this text.
};

/** One machine-readable throughput row for the --json report. */
struct JsonRow
{
    std::string benchmark; ///< e.g. "micro_replay/plan".
    std::string config;    ///< e.g. "jobs=1 layouts=40".
    double layoutsPerSec = 0.0;
    double eventsPerSec = 0.0; ///< 0 when the bench has no event axis.
    double wallMs = 0.0;       ///< Wall time of one measured batch.
    u64 stateBytesPerLane = 0; ///< Microarchitectural hot state per
                               ///< replay lane (0 = no lane axis).
    double verifyRate = 0.0;   ///< Fraction of hinted way probes the
                               ///< memo answered without a full scan.
};

/**
 * Collects JsonRow records and writes them as a single JSON document:
 *
 *   { "schema": "interf-bench-1",
 *     "schemaVersion": 3,
 *     "rows": [ { "benchmark": ..., "config": ...,
 *                 "layouts_per_sec": ..., "events_per_sec": ...,
 *                 "wall_ms": ... }, ... ],
 *     "phases": [ { "name": ..., "count": ...,
 *                   "wall_ms": ..., "thread_ms": ... }, ... ] }
 *
 * CI jobs upload this file as the perf artifact, so the field names are
 * a (small) stable interface; extend, don't rename (the document shape
 * is pinned by docs/bench-report.schema.json, which CI validates).
 * schemaVersion 2 added the version field itself and the "phases"
 * array — where the wall time went, per telemetry phase span, present
 * when telemetry was enabled for the run (--json implies it) and empty
 * otherwise. schemaVersion 3 marks the batched replay sweep: with
 * --batch K, bench_micro_replay emits "micro_replay/batched_k{k}" rows
 * (k lanes per pass over the event stream) whose layouts_per_sec is
 * directly comparable to the "micro_replay/plan" row at the same
 * config. schemaVersion 4 adds two fields to every row:
 * "state_bytes_per_lane" — the microarchitectural hot state one
 * replay lane keeps (cache tag/age/generation arrays, predictor
 * tables, BTB, RAS; 0 for benches with no lane axis), the number the
 * K-sweep trades against the host LLC (plan-sized way memos are
 * reported separately, via the replay.lane_memo_bytes telemetry gauge
 * and the bench's human-readable header) — and "verify_rate" — the
 * fraction of hinted way probes the
 * memo verification answered with a single tag load instead of a full
 * scan (0 for paths that take no hinted probes).
 */
class JsonReport
{
  public:
    void add(JsonRow row) { rows_.push_back(std::move(row)); }

    bool empty() const { return rows_.empty(); }

    /** Write the document to @p path; fatal() if unwritable. */
    void write(const std::string &path) const
    {
        std::ofstream out(path);
        if (!out)
            fatal("cannot write JSON report to '%s'", path.c_str());
        out << "{\n  \"schema\": \"interf-bench-1\",\n"
            << "  \"schemaVersion\": 4,\n  \"rows\": [";
        for (size_t i = 0; i < rows_.size(); ++i) {
            const JsonRow &r = rows_[i];
            out << (i ? ",\n" : "\n")
                << "    {\"benchmark\": \"" << escaped(r.benchmark)
                << "\", \"config\": \"" << escaped(r.config)
                << "\", \"layouts_per_sec\": " << num(r.layoutsPerSec)
                << ", \"events_per_sec\": " << num(r.eventsPerSec)
                << ", \"wall_ms\": " << num(r.wallMs)
                << ", \"state_bytes_per_lane\": " << r.stateBytesPerLane
                << ", \"verify_rate\": " << num(r.verifyRate) << "}";
        }
        out << "\n  ],\n  \"phases\": [";
        const auto phases = telemetry::phaseStats();
        for (size_t i = 0; i < phases.size(); ++i) {
            const telemetry::PhaseStat &p = phases[i];
            out << (i ? ",\n" : "\n")
                << "    {\"name\": \"" << escaped(p.name)
                << "\", \"count\": " << p.count
                << ", \"wall_ms\": " << num(p.wallMs)
                << ", \"thread_ms\": " << num(p.threadMs) << "}";
        }
        out << "\n  ]\n}\n";
        if (!out.flush())
            fatal("failed writing JSON report to '%s'", path.c_str());
    }

  private:
    static std::string escaped(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    /** Fixed-notation number; JSON has no Inf/NaN, map those to 0. */
    static std::string num(double v)
    {
        if (!(v == v) || v > 1e300 || v < -1e300)
            return "0";
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6f", v);
        return buf;
    }

    std::vector<JsonRow> rows_;
};

/** Register the shared flags on a parser. */
inline void
addScaleOptions(OptionParser &opts, u32 default_layouts = 40,
                u64 default_insts = 300000)
{
    opts.addInt("layouts", default_layouts,
                "code reorderings per benchmark (paper: 100)");
    opts.addInt("instructions", static_cast<i64>(default_insts),
                "dynamic instructions per run (paper: billions)");
    opts.addInt("jobs", 0,
                "worker threads for layout measurement (0 = one per "
                "hardware thread, 1 = serial); results are identical "
                "for any value");
    opts.addString("store", "",
                   "campaign artifact store directory: measured "
                   "batches are checkpointed there and reruns load "
                   "byte-identical samples instead of re-measuring "
                   "(empty = off)");
    opts.addString("csv", "", "also write results to this CSV file");
    opts.addString("json", "",
                   "write a machine-readable throughput report "
                   "(benchmark, config, layouts/sec, events/sec, "
                   "wall ms, per-phase durations) to this file");
    opts.addString("telemetry-out", "",
                   "enable telemetry and write the Perfetto-loadable "
                   "phase trace plus per-campaign run manifests into "
                   "this directory (empty = off)");
    opts.addFlag("progress",
                 "live campaign progress ticker on stderr (TTY only; "
                 "implies telemetry)");
    opts.addString("only", "",
                   "restrict to benchmarks whose name contains this");
}

/** Read the shared flags back. */
inline Scale
readScale(const OptionParser &opts)
{
    Scale s;
    s.layouts = static_cast<u32>(opts.getInt("layouts"));
    s.instructions = static_cast<u64>(opts.getInt("instructions"));
    s.storeDir = opts.getString("store");
    s.csvPath = opts.getString("csv");
    s.jsonPath = opts.getString("json");
    s.telemetryDir = opts.getString("telemetry-out");
    s.only = opts.getString("only");
    if (s.layouts < 1)
        fatal("--layouts must be >= 1");
    if (s.instructions < 10000)
        fatal("--instructions must be >= 10000");
    if (opts.getInt("jobs") < 0)
        fatal("--jobs must be >= 0");
    s.jobs = static_cast<u32>(opts.getInt("jobs"));
    // Both outputs need phase spans recorded: --telemetry-out for the
    // trace + manifests, --json for the embedded per-phase durations.
    if (!s.telemetryDir.empty())
        telemetry::setOutputDir(s.telemetryDir);
    else if (!s.jsonPath.empty() || opts.getFlag("progress"))
        telemetry::enable();
    if (opts.getFlag("progress"))
        telemetry::installStderrProgressTicker();
    return s;
}

/**
 * End-of-main telemetry hook for every bench: with --telemetry-out,
 * exports the accumulated spans as a Chrome trace-event file
 * (trace.json, loadable at ui.perfetto.dev) into the output directory.
 * Campaign manifests land there on their own as campaigns destruct.
 */
inline void
finishTelemetry(const Scale &scale)
{
    if (scale.telemetryDir.empty() || !telemetry::enabled())
        return;
    telemetry::writeChromeTrace(scale.telemetryDir + "/trace.json");
}

/** Campaign configuration at the requested scale. */
inline interferometry::CampaignConfig
campaignConfig(const Scale &scale)
{
    interferometry::CampaignConfig cfg;
    cfg.instructionBudget = scale.instructions;
    cfg.initialLayouts = scale.layouts;
    cfg.maxLayouts = scale.layouts;
    cfg.jobs = scale.jobs;
    cfg.storeDir = scale.storeDir;
    return cfg;
}

/** Should this benchmark run under the --only filter? */
inline bool
selected(const Scale &scale, const std::string &name)
{
    return scale.only.empty() ||
           name.find(scale.only) != std::string::npos;
}

} // namespace interf::bench

#endif // INTERF_BENCH_COMMON_HH
