/**
 * @file
 * Shared plumbing for the figure/table reproduction benches.
 *
 * Every bench accepts the same scale flags: the defaults regenerate the
 * figure in seconds at reduced scale; --layouts 100 --instructions
 * 1000000 (and up) approach the paper's scale. --csv writes the
 * machine-readable series next to the printed table.
 */

#ifndef INTERF_BENCH_COMMON_HH
#define INTERF_BENCH_COMMON_HH

#include <string>

#include "interferometry/campaign.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace interf::bench
{

/** Scale parameters shared by all benches. */
struct Scale
{
    u32 layouts = 40;
    u64 instructions = 300000;
    u32 jobs = 0; ///< Measurement worker threads (0 = all hardware).
    std::string storeDir; ///< Campaign artifact store (empty = off).
    std::string csvPath;
    std::string only; ///< Restrict to benchmarks containing this text.
};

/** Register the shared flags on a parser. */
inline void
addScaleOptions(OptionParser &opts, u32 default_layouts = 40,
                u64 default_insts = 300000)
{
    opts.addInt("layouts", default_layouts,
                "code reorderings per benchmark (paper: 100)");
    opts.addInt("instructions", static_cast<i64>(default_insts),
                "dynamic instructions per run (paper: billions)");
    opts.addInt("jobs", 0,
                "worker threads for layout measurement (0 = one per "
                "hardware thread, 1 = serial); results are identical "
                "for any value");
    opts.addString("store", "",
                   "campaign artifact store directory: measured "
                   "batches are checkpointed there and reruns load "
                   "byte-identical samples instead of re-measuring "
                   "(empty = off)");
    opts.addString("csv", "", "also write results to this CSV file");
    opts.addString("only", "",
                   "restrict to benchmarks whose name contains this");
}

/** Read the shared flags back. */
inline Scale
readScale(const OptionParser &opts)
{
    Scale s;
    s.layouts = static_cast<u32>(opts.getInt("layouts"));
    s.instructions = static_cast<u64>(opts.getInt("instructions"));
    s.storeDir = opts.getString("store");
    s.csvPath = opts.getString("csv");
    s.only = opts.getString("only");
    if (s.layouts < 1)
        fatal("--layouts must be >= 1");
    if (s.instructions < 10000)
        fatal("--instructions must be >= 10000");
    if (opts.getInt("jobs") < 0)
        fatal("--jobs must be >= 0");
    s.jobs = static_cast<u32>(opts.getInt("jobs"));
    return s;
}

/** Campaign configuration at the requested scale. */
inline interferometry::CampaignConfig
campaignConfig(const Scale &scale)
{
    interferometry::CampaignConfig cfg;
    cfg.instructionBudget = scale.instructions;
    cfg.initialLayouts = scale.layouts;
    cfg.maxLayouts = scale.layouts;
    cfg.jobs = scale.jobs;
    cfg.storeDir = scale.storeDir;
    return cfg;
}

/** Should this benchmark run under the --only filter? */
inline bool
selected(const Scale &scale, const std::string &name)
{
    return scale.only.empty() ||
           name.find(scale.only) != std::string::npos;
}

} // namespace interf::bench

#endif // INTERF_BENCH_COMMON_HH
