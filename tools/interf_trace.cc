/**
 * @file
 * Read a flight-recorder log from the command line.
 *
 * Front-end to telemetry/recorder.hh's reader: parses every segment of
 * a flight directory (sealed segments verify record by record; the
 * active segment parses up to the first torn record, which is the
 * expected shape after a SIGKILL) and prints the events as text
 * (default), as one JSON document (--json, schema
 * docs/flight.schema.json), or converted to Chrome trace-event JSON
 * with cross-thread flow arrows (--chrome PATH, loadable in Perfetto).
 * The exit code is the machine-readable verdict, interf_verify-style:
 *
 *   0  log read cleanly (a torn active tail is clean: that is what a
 *      killed process leaves, and everything before it is intact);
 *   1  corruption diagnostics (a sealed segment failing its checksums)
 *      or no flight log at the given directory;
 *   2  usage error.
 *
 * Examples:
 *   interf_trace --dir /tmp/telemetry            # finds /tmp/telemetry/flight
 *   interf_trace --dir /tmp/telemetry --tail 20
 *   interf_trace --dir /tmp/telemetry --json | jq .events
 *   interf_trace --dir /tmp/telemetry --chrome /tmp/flight-trace.json
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/recorder.hh"
#include "telemetry/telemetry.hh"
#include "util/digest.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/options.hh"

using namespace interf;
using namespace interf::telemetry;

namespace
{

constexpr int kExitClean = 0;
constexpr int kExitDiagnostics = 1;
constexpr int kExitUsage = 2;

int
usageError(const char *msg)
{
    std::fprintf(stderr, "interf_trace: %s\n", msg);
    return kExitUsage;
}

const char *
eventTypeName(flight::EventType type)
{
    switch (type) {
    case flight::EventType::Span:
        return "span";
    case flight::EventType::Log:
        return "log";
    case flight::EventType::Progress:
        return "progress";
    case flight::EventType::SpanOpen:
        return "span_open";
    }
    return "unknown";
}

const char *
logLevelName(u8 level)
{
    switch (static_cast<LogLevel>(level)) {
    case LogLevel::Inform:
        return "inform";
    case LogLevel::Warn:
        return "warn";
    case LogLevel::Fatal:
        return "fatal";
    case LogLevel::Panic:
        return "panic";
    }
    return "unknown";
}

void
printText(const std::vector<flight::Event> &events)
{
    for (const auto &ev : events) {
        const double ts = ev.tsNs / 1e9;
        switch (ev.type) {
        case flight::EventType::Span:
        case flight::EventType::SpanOpen:
            if (ev.type == flight::EventType::Span)
                std::printf("+%010.6fs  span      %-24s tid=%u "
                            "wall=%.3fms span=%llu",
                            ts, ev.name.c_str(), ev.tid, ev.wallNs / 1e6,
                            (unsigned long long)ev.spanId);
            else
                std::printf("+%010.6fs  open      %-24s tid=%u "
                            "span=%llu",
                            ts, ev.name.c_str(), ev.tid,
                            (unsigned long long)ev.spanId);
            if (ev.parentSpanId != 0)
                std::printf(" parent=%llu",
                            (unsigned long long)ev.parentSpanId);
            if (ev.campaignId != 0)
                std::printf(" campaign=%s batch=%u",
                            digestHex(ev.campaignId).c_str(),
                            ev.batchIndex);
            if (ev.candidateDigest != 0)
                std::printf(" candidate=%s",
                            digestHex(ev.candidateDigest).c_str());
            std::printf("\n");
            break;
        case flight::EventType::Log:
            std::printf("+%010.6fs  log       %s: %s\n", ts,
                        logLevelName(ev.logLevel), ev.name.c_str());
            break;
        case flight::EventType::Progress:
            std::printf("+%010.6fs  progress  %s %llu", ts,
                        ev.name.c_str(), (unsigned long long)ev.done);
            if (ev.total > 0)
                std::printf("/%llu", (unsigned long long)ev.total);
            std::printf(" (%llu cached, %llu fresh)",
                        (unsigned long long)ev.cached,
                        (unsigned long long)ev.fresh);
            if (ev.ratePerSec > 0)
                std::printf(" %.1f/s", ev.ratePerSec);
            if (ev.etaSec > 0)
                std::printf(" eta %.0fs", ev.etaSec);
            std::printf("\n");
            break;
        }
    }
}

Json
toJsonDoc(const flight::ReadResult &rr,
          const std::vector<flight::Event> &events)
{
    Json doc = Json::object();
    doc.set("schema", "interf-flight-1");
    doc.set("schema_version", flight::kFlightVersion);
    doc.set("segments", rr.segments);
    doc.set("torn_tail", rr.tornTail);
    Json errors = Json::array();
    for (const auto &e : rr.errors)
        errors.push(e);
    doc.set("errors", std::move(errors));
    Json evs = Json::array();
    for (const auto &ev : events) {
        Json e = Json::object();
        e.set("type", eventTypeName(ev.type));
        e.set("ts_ns", ev.tsNs);
        switch (ev.type) {
        case flight::EventType::Span:
        case flight::EventType::SpanOpen:
            e.set("name", ev.name);
            e.set("tid", ev.tid);
            e.set("wall_ns", ev.wallNs);
            e.set("thread_ns", ev.threadNs);
            e.set("span_id", ev.spanId);
            e.set("parent_span_id", ev.parentSpanId);
            e.set("campaign_id", digestHex(ev.campaignId));
            e.set("batch_index", ev.batchIndex);
            e.set("candidate_digest", digestHex(ev.candidateDigest));
            break;
        case flight::EventType::Log:
            e.set("level", logLevelName(ev.logLevel));
            e.set("message", ev.name);
            break;
        case flight::EventType::Progress:
            e.set("task", ev.name);
            e.set("done", ev.done);
            e.set("total", ev.total);
            e.set("cached", ev.cached);
            e.set("fresh", ev.fresh);
            e.set("rate_per_sec", ev.ratePerSec);
            e.set("eta_sec", ev.etaSec);
            break;
        }
        evs.push(std::move(e));
    }
    doc.set("events", std::move(evs));
    return doc;
}

/** Convert span events to Chrome trace-event JSON with flow arrows —
 *  the post-mortem twin of telemetry::writeChromeTrace. */
void
writeChrome(const std::string &path,
            const std::vector<flight::Event> &events)
{
    // Open markers resolve parents whose close never reached the log
    // (killed mid-phase); they share tid and start ts with the finished
    // record, so either works as a flow-arrow source.
    std::unordered_map<u64, const flight::Event *> by_id;
    for (const auto &ev : events)
        if ((ev.type == flight::EventType::Span ||
             ev.type == flight::EventType::SpanOpen) &&
            ev.spanId != 0)
            by_id.emplace(ev.spanId, &ev);

    Json out = Json::array();
    {
        Json meta = Json::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", 1);
        meta.set("tid", 0);
        Json args = Json::object();
        args.set("name", "interferometry (flight log)");
        meta.set("args", std::move(args));
        out.push(std::move(meta));
    }
    for (const auto &ev : events) {
        if (ev.type != flight::EventType::Span)
            continue;
        Json x = Json::object();
        x.set("name", ev.name);
        x.set("ph", "X");
        x.set("pid", 1);
        x.set("tid", ev.tid);
        x.set("ts", ev.tsNs / 1000); // microseconds
        x.set("dur", ev.wallNs / 1000);
        Json args = Json::object();
        args.set("thread_us", ev.threadNs / 1000);
        args.set("span_id", ev.spanId);
        if (ev.parentSpanId != 0)
            args.set("parent_span_id", ev.parentSpanId);
        if (ev.campaignId != 0) {
            args.set("campaign_id", digestHex(ev.campaignId));
            args.set("batch_index", ev.batchIndex);
        }
        if (ev.candidateDigest != 0)
            args.set("candidate_digest", digestHex(ev.candidateDigest));
        x.set("args", std::move(args));
        out.push(std::move(x));
        auto parent = ev.parentSpanId != 0 ? by_id.find(ev.parentSpanId)
                                           : by_id.end();
        if (parent == by_id.end() || parent->second->tid == ev.tid)
            continue;
        Json flow_s = Json::object();
        flow_s.set("name", "enqueue");
        flow_s.set("cat", "flow");
        flow_s.set("ph", "s");
        flow_s.set("id", ev.spanId);
        flow_s.set("pid", 1);
        flow_s.set("tid", parent->second->tid);
        flow_s.set("ts", parent->second->tsNs / 1000);
        out.push(std::move(flow_s));
        Json flow_f = Json::object();
        flow_f.set("name", "enqueue");
        flow_f.set("cat", "flow");
        flow_f.set("ph", "f");
        flow_f.set("bp", "e");
        flow_f.set("id", ev.spanId);
        flow_f.set("pid", 1);
        flow_f.set("tid", ev.tid);
        flow_f.set("ts", ev.tsNs / 1000);
        out.push(std::move(flow_f));
    }
    Json doc = Json::object();
    doc.set("displayTimeUnit", "ms");
    doc.set("traceEvents", std::move(out));
    writeFileAtomic(path, doc.dump(1) + "\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("interf_trace",
                      "read a crash-safe flight-recorder log: tail it, "
                      "dump it as JSON, or convert it for Perfetto");
    opts.addString("dir", "",
                   "flight-log directory (a .../flight dir, or a "
                   "--telemetry-out dir containing one)");
    opts.addInt("tail", 0, "print only the last N events (0 = all)");
    opts.addInt("since", 0,
                "drop events before this many nanoseconds after the "
                "recorded process's telemetry epoch");
    opts.addFlag("json", "print one JSON document on stdout "
                         "(docs/flight.schema.json)");
    opts.addString("chrome", "",
                   "also write the span events as Chrome trace-event "
                   "JSON (with flow arrows) to this path");
    opts.parse(argc, argv);

    const std::string dir_opt = opts.getString("dir");
    const i64 tail = opts.getInt("tail");
    const i64 since = opts.getInt("since");
    if (dir_opt.empty())
        return usageError("--dir is required (see --help)");
    if (tail < 0 || since < 0)
        return usageError("--tail and --since must be >= 0");

    // Accept either the flight dir itself or its parent telemetry-out
    // dir, so `interf_trace --dir $TELEMETRY_OUT` just works.
    std::string dir = dir_opt;
    flight::ReadResult rr;
    if (!flight::readDir(dir, rr)) {
        const std::string nested = dir_opt + "/flight";
        rr = flight::ReadResult();
        if (!std::filesystem::is_directory(nested) ||
            !flight::readDir(nested, rr)) {
            std::fprintf(stderr,
                         "interf_trace: no flight log under '%s'\n",
                         dir_opt.c_str());
            return kExitDiagnostics;
        }
        dir = nested;
    }

    std::vector<flight::Event> events = rr.events;
    if (since > 0) {
        events.erase(std::remove_if(events.begin(), events.end(),
                                    [since](const flight::Event &e) {
                                        return e.tsNs <
                                               static_cast<u64>(since);
                                    }),
                     events.end());
    }
    if (tail > 0 && events.size() > static_cast<size_t>(tail))
        events.erase(events.begin(),
                     events.end() - static_cast<size_t>(tail));

    if (!opts.getString("chrome").empty())
        writeChrome(opts.getString("chrome"), events);

    if (opts.getFlag("json")) {
        std::printf("%s\n", toJsonDoc(rr, events).dump(1).c_str());
    } else {
        printText(events);
        std::printf("-- %u segment%s, %zu event%s", rr.segments,
                    rr.segments == 1 ? "" : "s", events.size(),
                    events.size() == 1 ? "" : "s");
        if (rr.tornTail)
            std::printf(", torn active tail (expected after a kill)");
        std::printf("\n");
        for (const auto &err : rr.errors)
            std::fprintf(stderr, "interf_trace: %s: %s\n", dir.c_str(),
                         err.c_str());
    }
    return rr.errors.empty() ? kExitClean : kExitDiagnostics;
}
