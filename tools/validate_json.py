#!/usr/bin/env python3
"""Validate a JSON document against a (small) JSON Schema subset.

Stdlib-only on purpose: CI runs this against the run manifests the
telemetry layer emits (docs/manifest.schema.json) without needing
jsonschema installed. Supports the subset that schema uses: type,
required, properties, items, enum, minimum.

Usage: validate_json.py SCHEMA DOCUMENT
Exit codes: 0 = valid, 1 = invalid or unreadable, 2 = usage.
"""

import json
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; exclude it from "number".
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(value, schema, path, errors):
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(TYPE_CHECKS[t](value) for t in types):
            errors.append(
                f"{path}: expected {expected}, "
                f"got {type(value).__name__}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(
                f"{path}: {value} below minimum {schema['minimum']}"
            )
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required field '{key}'")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], subschema, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            schema = json.load(f)
        with open(argv[2]) as f:
            document = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_json: {e}", file=sys.stderr)
        return 1
    errors = []
    validate(document, schema, "$", errors)
    for err in errors:
        print(f"validate_json: {argv[2]}: {err}", file=sys.stderr)
    if not errors:
        print(f"{argv[2]}: valid against {argv[1]}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
