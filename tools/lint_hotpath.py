#!/usr/bin/env python3
"""Lint the replay kernel's hot paths for constructs they must not use.

The batched replay kernel's throughput rests on its hot loops doing
nothing but arithmetic and array reads: no allocation, no logging, no
virtual dispatch, no exceptions, and no non-relaxed atomics anywhere
near them (DESIGN.md §5k). Those properties are invisible to the type
system and easy to regress with a well-meaning one-line change, so CI
enforces them here, next to clang-tidy.

Two kinds of hot region, configured in HOT_FILES below:

  * marker regions — `// lint:hot-begin ...` / `// lint:hot-end`
    comment pairs bracketing the event loops in src/core/timing.cc,
    whose enclosing functions legitimately allocate in their setup
    phase (lane pools, result vectors) before entering the kernel;
  * function manifests — named inline member functions in the cache /
    BTB headers whose whole body is hot (they are called per event or
    per line from inside the marker regions).

A manifest name that no longer matches a function definition is an
error (exit 2): renames must update the manifest, otherwise the lint
would silently stop covering the renamed function. The non-relaxed
atomics rule applies file-wide to every listed file — the replay data
structures are shared across pool workers as immutable state, and any
synchronization beside the documented relaxed telemetry counters is a
design violation, hot loop or not.

Exit codes: 0 clean, 1 findings, 2 configuration/IO error.

Stdlib only. Comments and string literals are stripped (preserving
line numbers) before any rule runs, so banned words in documentation
or assertion messages never trip the lint.
"""

import argparse
import os
import re
import sys

# Every file the lint covers. `functions` lists hot inline functions
# that must exist in the file; `markers` requires at least one
# lint:hot-begin/end pair. The atomics rule applies to all of them.
HOT_FILES = [
    {
        "path": "src/core/timing.cc",
        "markers": True,
        "functions": [],
    },
    {
        # Plan/table construction allocates by design (it runs once
        # per campaign or per layout, not per event); only the
        # file-wide atomics rule applies.
        "path": "src/trace/replay.cc",
        "markers": False,
        "functions": [],
    },
    {
        "path": "src/cache/cache.hh",
        "markers": False,
        "functions": [
            "access", "contains", "accessFound", "probeWay",
            "probeWayHinted", "accessFoundWay", "accessAt", "install",
            "materializeSet", "touchLru", "renormalizeLru", "findWay",
            "accessT", "accessFoundT", "accessFoundWayT", "probeWayT",
            "installT", "pickVictim", "setIndex", "tagOf",
        ],
    },
    {
        "path": "src/cache/hierarchy.hh",
        "markers": False,
        "functions": [
            "fetchInst", "accessData", "probeDataWay", "accessDataAt",
            "probeDataWayHinted", "accessDataCommit",
            "fetchInstHinted",
        ],
    },
    {
        "path": "src/bpred/btb.hh",
        "markers": False,
        "functions": [
            "lookup", "lookupUpdate", "probeWay", "probeWayHinted",
            "updateFound", "updateFoundAt", "update", "setIndex",
            "touchLru", "renormalizeLru", "pickVictim", "findWay",
        ],
    },
    {
        "path": "src/cache/hierarchy.cc",
        "markers": False,
        "functions": [],
    },
    {
        "path": "src/bpred/btb.cc",
        "markers": False,
        "functions": [],
    },
]

# Rules applied inside hot regions, line by line, on sanitized text.
HOT_RULES = [
    ("allocation",
     re.compile(r"\bnew\b|\bdelete\b|\bmalloc\s*\(|\bcalloc\s*\("
                r"|\brealloc\s*\(|\bfree\s*\(|\bmake_unique\b"
                r"|\bmake_shared\b|\.push_back\s*\(|\.emplace_back\s*\("
                r"|\.resize\s*\(|\.reserve\s*\(|\bstd::vector\s*<"
                r"|\bstd::string\b|\bstrprintf\s*\(")),
    ("logging",
     re.compile(r"\bpanic\s*\(|\bfatal\s*\(|\bwarn\s*\(|\binfo\s*\("
                r"|\bprintf\s*\(|\bfprintf\s*\(|\bputs\s*\("
                r"|\bstd::cout\b|\bstd::cerr\b")),
    ("exception", re.compile(r"\bthrow\b")),
    ("virtual-dispatch",
     re.compile(r"\bvirtual\b|\bpredictor_\s*->|\bdynamic_cast\b")),
]

# Rule applied to every line of every listed file. Relaxed atomics are
# the telemetry counters' documented idiom; everything else is banned.
ATOMIC_RULE = ("non-relaxed-atomic",
               re.compile(r"\bstd::atomic\b|__atomic_"
                          r"|\batomic_thread_fence\b"
                          r"|\bmemory_order_(?!relaxed\b)\w+"))

MARKER_BEGIN = re.compile(r"//\s*lint:hot-begin\b")
MARKER_END = re.compile(r"//\s*lint:hot-end\b")


def sanitize(text):
    """Blank comments and string/char literals, preserving newlines.

    A small state machine instead of regex so multi-line block
    comments and escapes stay line-accurate.
    """
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif (state == "string" and c == '"') or \
                 (state == "char" and c == "'"):
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def marker_regions(raw_lines, path, errors):
    """[(begin_line, end_line)] 1-based inclusive, from marker pairs."""
    regions = []
    begin = None
    for num, line in enumerate(raw_lines, 1):
        if MARKER_BEGIN.search(line):
            if begin is not None:
                errors.append(f"{path}:{num}: nested lint:hot-begin")
            begin = num
        elif MARKER_END.search(line):
            if begin is None:
                errors.append(f"{path}:{num}: lint:hot-end without "
                              "begin")
            else:
                regions.append((begin, num))
                begin = None
    if begin is not None:
        errors.append(f"{path}:{begin}: unterminated lint:hot-begin")
    return regions


def match_parens(text, open_idx):
    """Index one past the ')' matching text[open_idx] == '(', or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def function_regions(sanitized, name, path, errors):
    """Line ranges of every definition of member function `name`.

    A definition is `name ( ... )` followed (after qualifiers like
    const/noexcept/-> type) by `{`; calls are followed by anything
    else and are skipped. Config error if no definition matches.
    """
    regions = []
    for m in re.finditer(r"\b%s\s*\(" % re.escape(name), sanitized):
        open_idx = sanitized.index("(", m.start())
        after_args = match_parens(sanitized, open_idx)
        if after_args < 0:
            continue
        rest = sanitized[after_args:]
        qual = re.match(
            r"\s*(?:const\b\s*|noexcept\b\s*|->\s*[\w:<>&*\s]+?\s*)*\{",
            rest)
        if not qual:
            continue
        body_open = after_args + qual.end() - 1
        depth = 0
        body_close = -1
        for i in range(body_open, len(sanitized)):
            if sanitized[i] == "{":
                depth += 1
            elif sanitized[i] == "}":
                depth -= 1
                if depth == 0:
                    body_close = i
                    break
        if body_close < 0:
            errors.append(f"{path}: unbalanced braces in '{name}'")
            continue
        begin = sanitized.count("\n", 0, m.start()) + 1
        end = sanitized.count("\n", 0, body_close) + 1
        regions.append((begin, end))
    if not regions:
        errors.append(
            f"{path}: hot function '{name}' not found; if it was "
            "renamed, update HOT_FILES in tools/lint_hotpath.py")
    return regions


def lint_file(root, spec, findings, errors):
    path = spec["path"]
    full = os.path.join(root, path)
    try:
        with open(full, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        errors.append(f"{path}: unreadable: {e}")
        return
    raw_lines = text.splitlines()
    sanitized = sanitize(text)
    san_lines = sanitized.splitlines()

    regions = []
    if spec["markers"]:
        regions += marker_regions(raw_lines, path, errors)
        if not regions:
            errors.append(f"{path}: expected lint:hot-begin/end "
                          "marker regions, found none")
    for name in spec["functions"]:
        regions += function_regions(sanitized, name, path, errors)

    hot = set()
    for begin, end in regions:
        hot.update(range(begin, end + 1))

    for num, line in enumerate(san_lines, 1):
        if num in hot:
            for rule, pat in HOT_RULES:
                m = pat.search(line)
                if m:
                    findings.append((path, num, rule,
                                     raw_lines[num - 1].strip()))
        m = ATOMIC_RULE[1].search(line)
        if m:
            findings.append((path, num, ATOMIC_RULE[0],
                             raw_lines[num - 1].strip()))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: the script's "
                         "parent directory)")
    ap.add_argument("--list-regions", action="store_true",
                    help="print the resolved hot regions and exit")
    args = ap.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    findings = []
    errors = []
    if args.list_regions:
        for spec in HOT_FILES:
            full = os.path.join(root, spec["path"])
            try:
                with open(full, encoding="utf-8") as f:
                    text = f.read()
            except OSError as e:
                errors.append(f"{spec['path']}: unreadable: {e}")
                continue
            sanitized = sanitize(text)
            regions = marker_regions(text.splitlines(), spec["path"],
                                     errors) if spec["markers"] else []
            for name in spec["functions"]:
                regions += function_regions(sanitized, name,
                                            spec["path"], errors)
            for begin, end in sorted(regions):
                print(f"{spec['path']}:{begin}-{end}")
    else:
        for spec in HOT_FILES:
            lint_file(root, spec, findings, errors)

    for e in errors:
        print(f"lint_hotpath: config error: {e}", file=sys.stderr)
    for path, num, rule, snippet in findings:
        print(f"{path}:{num}: {rule}: {snippet}")

    if errors:
        return 2
    if findings:
        print(f"{len(findings)} hot-path violation(s)")
        return 1
    print("hot paths clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
