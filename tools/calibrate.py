#!/usr/bin/env python3
"""Feedback calibration of the synthetic SPEC suite.

Runs the calibration probe (tools/probe.cc) against the current library,
compares each benchmark's mean CPI / MPKI with the paper-derived targets
below, and nudges the profile parameters in src/workloads/spec.cc
multiplicatively. Two or three rounds converge; the committed spec.cc is
the calibrated result, so users never need to run this.

Usage: python3 tools/calibrate.py [rounds] [layouts] [instructions]
"""

import re
import subprocess
import sys

# benchmark -> (target mean CPI, target mean MPKI) on the modeled Xeon.
# CPI targets come from Table 1 intercept + slope * typical MPKI; MPKI
# levels echo Figure 7 and the SPEC 2006 branch-behaviour literature.
TARGETS = {
    "400.perlbench": (0.70, 6.5),
    "401.bzip2": (0.73, 8.0),
    "403.gcc": (1.98, 6.0),
    "416.gamess": (0.60, 1.5),
    "429.mcf": (4.70, 10.0),
    "433.milc": (2.20, 1.0),
    "434.zeusmp": (1.20, 1.0),
    "435.gromacs": (0.85, 2.0),
    "436.cactusADM": (1.30, 0.8),
    "444.namd": (0.67, 1.5),
    "445.gobmk": (0.85, 11.0),
    "450.soplex": (1.87, 3.0),
    "454.calculix": (0.50, 1.2),
    "456.hmmer": (0.47, 6.5),
    "459.GemsFDTD": (1.40, 0.8),
    "462.libquantum": (1.50, 3.0),
    "464.h264ref": (0.56, 3.0),
    "465.tonto": (0.69, 2.5),
    "470.lbm": (2.00, 0.5),
    "471.omnetpp": (2.19, 8.0),
    "473.astar": (2.63, 12.0),
    "482.sphinx3": (1.13, 6.0),
    "483.xalancbmk": (2.04, 5.0),
}

SPEC = "src/workloads/spec.cc"


def run_probe(layouts, insts):
    subprocess.run(["cmake", "--build", "build"], check=True,
                   capture_output=True)
    subprocess.run(
        ["g++", "-std=c++20", "-O2", "-Isrc", "tools/probe.cc",
         "build/src/libinterf.a", "-o", "/tmp/probe"], check=True)
    out = subprocess.run(["/tmp/probe", str(layouts), str(insts)],
                         check=True, capture_output=True, text=True).stdout
    rows = {}
    for line in out.splitlines()[1:]:
        f = line.split()
        if len(f) < 11:
            continue
        rows[f[0]] = dict(cpi=float(f[1]), mpki=float(f[3]),
                          l1i=float(f[5]), l2=float(f[6]),
                          slope=float(f[7]), icept=float(f[8]))
    return rows


def clamp(x, lo, hi):
    return max(lo, min(hi, x))


def get_field(body, key):
    m = re.search(r"p\.%s = ([0-9.eE+-]+)" % key, body)
    return float(m.group(1)) if m else None


def set_field(body, key, value):
    rep = "p.%s = %g;" % (key, value)
    new, n = re.subn(r"p\.%s = [^;]+;" % key, rep, body, count=1)
    if n == 0:
        new = "\n        " + rep + body
    return new


def adjust(body, row, target):
    tgt_cpi, tgt_mpki = target
    cur_cpi, cur_mpki = row["cpi"], row["mpki"]

    # --- MPKI: scale the noise sources.
    r = clamp(tgt_mpki / max(cur_mpki, 1e-3), 0.3, 3.0)
    if abs(1 - r) > 0.1:
        fr = get_field(body, "fracRandom")
        fh = get_field(body, "fracHistory")
        fb = get_field(body, "fracBiased")
        fp = get_field(body, "fracPeriodic")
        total = fb + fp + fh + fr
        fr2 = clamp(fr * r, 0.002, 0.6)
        fh2 = clamp(fh * (1 + (r - 1) * 0.6), 0.0, 0.6)
        fp2 = max(min(total, 0.998) - fb - fr2 - fh2, 0.02)
        if fb + fp2 + fh2 + fr2 > 0.999:
            fb = max(0.999 - fp2 - fh2 - fr2, 0.02)
            body = set_field(body, "fracBiased", round(fb, 3))
        body = set_field(body, "fracRandom", round(fr2, 4))
        body = set_field(body, "fracHistory", round(fh2, 3))
        body = set_field(body, "fracPeriodic", round(fp2, 3))
        bmin = get_field(body, "biasMin")
        bmax = get_field(body, "biasMax")
        if bmin is not None:
            bmin2 = clamp(1 - (1 - bmin) * (1 + (r - 1) * 0.7), 0.5, 0.999)
            bmax2 = clamp(1 - (1 - bmax) * (1 + (r - 1) * 0.7),
                          bmin2 + 0.001, 0.9995)
            body = set_field(body, "biasMin", round(bmin2, 4))
            body = set_field(body, "biasMax", round(bmax2, 4))

    # --- CPI at the target MPKI.
    pred_cpi = cur_cpi + row["slope"] * (tgt_mpki - cur_mpki)
    delta = tgt_cpi - pred_cpi
    if abs(delta) > 0.04:
        blk = get_field(body, "meanBlocksPerProc") or 10
        insts = 5.0
        ee = get_field(body, "meanExtraExecCycles")
        ee2 = ee + delta * insts
        if ee2 >= 0.05:
            body = set_field(body, "meanExtraExecCycles",
                             round(clamp(ee2, 0.05, 8.0), 3))
        else:
            body = set_field(body, "meanExtraExecCycles", 0.05)
            spend = delta + (ee - 0.05) / insts  # still-needed CPI delta
            fm = get_field(body, "fracMem") or 0.0
            mem_cpi = row["l2"] * 220.0 / 6.0 / 1000.0
            if fm > 0 and mem_cpi > 0.02:
                scale = clamp((mem_cpi + spend) / mem_cpi, 0.1, 3.0)
                fm2 = round(clamp(fm * scale, 0.0, 0.5), 4)
                body = set_field(body, "fracMem", fm2)
                fl1 = get_field(body, "fracL1")
                body = set_field(body, "fracL1",
                                 round(clamp(fl1 + fm - fm2, 0.05, 0.98),
                                       4))
            else:
                # Trim L2-tier traffic instead.
                fl2 = get_field(body, "fracL2")
                fl22 = round(clamp(fl2 + spend * 2.5, 0.02, 0.6), 4)
                body = set_field(body, "fracL2", fl22)
                fl1 = get_field(body, "fracL1")
                body = set_field(body, "fracL1",
                                 round(clamp(fl1 + fl2 - fl22, 0.05,
                                             0.98), 4))
    return body


def one_round(layouts, insts):
    rows = run_probe(layouts, insts)
    src = open(SPEC).read()
    parts = re.split(r'(auto p = base\("([^"]+)", \+\+i\);)', src)
    out = [parts[0]]
    i = 1
    worst = 0.0
    while i < len(parts):
        header, name, body = parts[i], parts[i + 1], parts[i + 2]
        if name in TARGETS and name in rows:
            row = rows[name]
            tgt = TARGETS[name]
            err = max(abs(row["cpi"] - tgt[0]) / tgt[0],
                      abs(row["mpki"] - tgt[1]) / max(tgt[1], 0.5))
            worst = max(worst, err)
            print("%-16s cpi %.3f->%.2f  mpki %6.2f->%5.1f  err %.2f"
                  % (name, row["cpi"], tgt[0], row["mpki"], tgt[1], err))
            body = adjust(body, row, tgt)
        out.append(header)
        out.append(body)
        i += 3
    open(SPEC, "w").write("".join(out))
    return worst


def main():
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    layouts = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    insts = int(sys.argv[3]) if len(sys.argv) > 3 else 400000
    for k in range(rounds):
        print("=== calibration round %d ===" % (k + 1))
        worst = one_round(layouts, insts)
        print("worst relative error: %.2f" % worst)


if __name__ == "__main__":
    main()
