/**
 * @file
 * Run the machine-config soundness analyzer from the command line.
 *
 * Front-end to src/analyze: builds a MachineConfig (the default Xeon
 * E5440, optionally rewritten by --config fleet overrides), optionally
 * binds a profile's program / a generated replay plan / seeded layout
 * specs, and runs the ConfigSoundness / PlanBounds / LayoutInjectivity
 * passes. Prints the derived facts plus diagnostics as text (default)
 * or JSON (--json; schema in docs/analyze-report.schema.json). Exit
 * codes match interf_verify:
 *
 *   0  the config is proven sound (warnings allowed unless --strict);
 *   1  at least one error diagnostic (--strict: any diagnostic);
 *   2  usage error (unknown profile, malformed --config, ...).
 *
 * Examples:
 *   interf_analyze                                  # default machine
 *   interf_analyze --config l1i.line=16             # salt collision
 *   interf_analyze --profile 400.perlbench --budget 200000 --layouts 8
 *   interf_analyze --max-addr 52 --json             # huge address space
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analyze/analyze.hh"
#include "core/config.hh"
#include "layout/linker.hh"
#include "trace/generator.hh"
#include "trace/replay.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "workloads/builder.hh"
#include "workloads/spec.hh"

using namespace interf;

namespace
{

constexpr int kExitClean = 0;
constexpr int kExitDiagnostics = 1;
constexpr int kExitUsage = 2;

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "interf_analyze: %s\n", msg.c_str());
    return kExitUsage;
}

const char *
replacementName(cache::Replacement r)
{
    return r == cache::Replacement::Lru ? "lru" : "random";
}

Json
cacheFacts(const cache::CacheConfig &cfg, Addr line_ceiling,
           u64 lru_advance_bound)
{
    Json j = Json::object();
    j.set("name", cfg.name);
    j.set("sizeBytes", cfg.sizeBytes);
    j.set("assoc", cfg.assoc);
    j.set("lineBytes", cfg.lineBytes);
    j.set("replacement", replacementName(cfg.replacement));
    j.set("requiredTagBits",
          analyze::requiredTagBits(cfg.lineBytes, line_ceiling));
    j.set("tagBits", cache::Cache::kTagBits);
    j.set("epochShift", cache::Cache::kEpochShift);
    j.set("narrowLru", analyze::narrowLruFor(cfg));
    j.set("lruAdvanceBound", lru_advance_bound);
    return j;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("interf_analyze",
                      "statically prove the replay kernel's compaction "
                      "invariants for a machine config");
    opts.addString("config", "",
                   "fleet overrides applied to the default machine, "
                   "e.g. l1i.line=16,l2.assoc=24,btb.sets=512");
    opts.addString("profile", "",
                   "suite benchmark whose program bounds the code "
                   "address space (e.g. 400.perlbench)");
    opts.addInt("budget", 0,
                "instruction budget: generate a trace and run the "
                "plan wrap-bound analysis (requires --profile)");
    opts.addInt("layouts", 0,
                "expand this many seeded layout specs and run the "
                "injectivity proof (requires --profile)");
    opts.addInt("max-addr", 0,
                "override the cache-indexed address ceiling to "
                "2^BITS (what-if analysis for larger address spaces)");
    opts.addFlag("strict", "any diagnostic (warnings too) exits 1");
    opts.addFlag("json", "print the report as JSON on stdout");
    opts.parse(argc, argv);

    const std::string profile_name = opts.getString("profile");
    const std::string override_spec = opts.getString("config");
    const i64 budget = opts.getInt("budget");
    const i64 layouts = opts.getInt("layouts");
    const i64 max_addr = opts.getInt("max-addr");

    if (profile_name.empty() && (budget > 0 || layouts > 0))
        return usageError("--budget and --layouts require --profile");
    if (budget < 0 || layouts < 0)
        return usageError("--budget and --layouts must be >= 0");
    if (max_addr < 0 || max_addr > 63)
        return usageError("--max-addr must be in 0..63");

    core::MachineConfig machine = core::MachineConfig::xeonE5440();
    if (!override_spec.empty()) {
        std::string err;
        if (!analyze::applyConfigOverride(machine, override_spec, &err))
            return usageError("bad --config: " + err);
    }

    // Bind the optional artifacts. Everything is kept alive here so
    // the borrowed Artifacts pointers stay valid through the run.
    trace::Program prog;
    trace::Trace tr;
    trace::ReplayPlan plan;
    std::vector<layout::LayoutSpec> specs;
    verify::Artifacts arts;
    arts.machine = &machine;
    arts.path = strprintf("<machine '%s'>", machine.name.c_str());

    if (!profile_name.empty()) {
        if (!workloads::isSuiteBenchmark(profile_name))
            return usageError(strprintf("unknown profile '%s' (see "
                                        "workloads/spec.hh)",
                                        profile_name.c_str()));
        const auto &profile = workloads::specFor(profile_name).profile;
        prog = workloads::buildProgram(profile);
        arts.program = &prog;
        arts.path = strprintf("<machine '%s' x %s>",
                              machine.name.c_str(),
                              profile_name.c_str());
        if (budget > 0) {
            trace::TraceGenerator gen(prog, profile.behaviourSeed);
            tr = gen.makeTrace(static_cast<u64>(budget));
            plan = trace::ReplayPlan(prog, tr);
            arts.plan = &plan;
        }
        const layout::Linker linker;
        for (i64 i = 0; i < layouts; ++i) {
            layout::LayoutKey key;
            key.seed = static_cast<u64>(i);
            specs.push_back(linker.specFor(prog, key));
        }
        if (!specs.empty())
            arts.layoutSpecs = &specs;
    }
    if (max_addr > 0)
        arts.lineAddrCeiling = Addr{1} << max_addr;

    const verify::VerifyResult result =
        analyze::soundnessPasses().run(arts);

    analyze::AddressSpace space =
        arts.program ? analyze::AddressSpace::forProgram(*arts.program)
                     : analyze::AddressSpace::engineDefault();
    if (arts.lineAddrCeiling)
        space.lineCeiling = arts.lineAddrCeiling;
    analyze::LruAdvanceBounds bounds;
    if (arts.plan)
        bounds = analyze::lruAdvanceBounds(machine, *arts.plan);

    if (opts.getFlag("json")) {
        Json report = Json::object();
        report.set("schemaVersion", 1);
        report.set("tool", "interf_analyze");
        Json jm = Json::object();
        jm.set("name", machine.name);
        jm.set("lineCeiling", space.lineCeiling);
        jm.set("codeCeiling", space.codeCeiling);
        Json caches = Json::array();
        caches.push(cacheFacts(machine.hierarchy.l1i,
                               space.lineCeiling, bounds.l1i));
        caches.push(cacheFacts(machine.hierarchy.l1d,
                               space.lineCeiling, bounds.l1d));
        caches.push(cacheFacts(machine.hierarchy.l2,
                               space.lineCeiling, bounds.l2));
        jm.set("caches", std::move(caches));
        Json btb = Json::object();
        btb.set("sets", machine.btbSets);
        btb.set("ways", machine.btbWays);
        jm.set("btb", std::move(btb));
        report.set("machine", std::move(jm));
        Json jr;
        std::string err;
        if (!Json::parse(result.toJson(), jr, &err))
            panic("VerifyResult::toJson produced invalid JSON: %s",
                  err.c_str());
        report.set("result", std::move(jr));
        std::printf("%s\n", report.dump(2).c_str());
    } else {
        std::printf("machine '%s': line ceiling %#llx, code ceiling "
                    "%#llx\n",
                    machine.name.c_str(),
                    static_cast<unsigned long long>(space.lineCeiling),
                    static_cast<unsigned long long>(space.codeCeiling));
        const cache::CacheConfig *caches[3] = {&machine.hierarchy.l1i,
                                               &machine.hierarchy.l1d,
                                               &machine.hierarchy.l2};
        for (u32 i = 0; i < 3; ++i) {
            const cache::CacheConfig &c = *caches[i];
            std::printf(
                "  %-4s %8llu B, %2u-way, %3u B lines, %-6s: "
                "%2u/%u tag bits%s%s\n",
                c.name.c_str(),
                static_cast<unsigned long long>(c.sizeBytes), c.assoc,
                c.lineBytes, replacementName(c.replacement),
                analyze::requiredTagBits(c.lineBytes,
                                         space.lineCeiling),
                cache::Cache::kTagBits,
                analyze::narrowLruFor(c) ? ", u8 ages" : "",
                c.replacement == cache::Replacement::Lru &&
                        !analyze::narrowLruFor(c)
                    ? ", u32 stamps"
                    : "");
        }
        std::printf("  btb  %u sets x %u ways, u32 full-PC tags\n",
                    machine.btbSets, machine.btbWays);
        if (arts.plan)
            std::printf("  plan: %llu fetch lines -> LRU advance "
                        "bounds %llu / %llu / %llu\n",
                        static_cast<unsigned long long>(
                            bounds.fetchLines),
                        static_cast<unsigned long long>(bounds.l1i),
                        static_cast<unsigned long long>(bounds.l1d),
                        static_cast<unsigned long long>(bounds.l2));
        result.printText(stdout);
    }

    const bool strict_fail =
        opts.getFlag("strict") && result.warningCount() > 0;
    return result.ok() && !strict_fail ? kExitClean : kExitDiagnostics;
}
