#!/usr/bin/env python3
"""Compare a bench --json report against a committed baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.10]
           [--verdict-json VERDICT.json] [--history-append HISTORY.jsonl]
           [--run-id SHA]

For every row present in both reports (matched by benchmark name), the
current layouts_per_sec is compared against the baseline. Rows more than
the threshold slower are reported. CI hosts are shared and noisy, so a
regression is a soft warning — the script prints GitHub Actions
::warning:: annotations and always exits 0 — but the annotations land on
the PR, so a real regression is visible where the change is reviewed.

--verdict-json writes the same comparison machine-readably (one object
with per-row baseline/current/delta/verdict), so later steps can act on
the outcome without scraping the log. --history-append appends that
run's rows as one JSON line to a history file (BENCH_history.jsonl at
the repo root): a long-lived record of measured throughput per CI run,
plottable with nothing but the jsonl. --run-id labels the line (CI
passes the commit SHA).

A missing or unparsable report is a hard error (exit 2): a soft-warn
there would let a renamed baseline silently disable the check forever.

Stdlib only; the baseline lives at the repo root as BENCH_replay.json.
"""

import argparse
import json
import sys
import time


def load_report(path, role):
    """Parse one report file, or exit 2 with a typed message.

    `role` is "baseline" or "current" so the error says which side of
    the comparison is broken.
    """
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as e:
        print(f"error: {role} report {path} missing or unreadable: "
              f"{e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"error: {role} report {path} is not valid JSON: {e}",
              file=sys.stderr)
        sys.exit(2)
    if not isinstance(report, dict):
        print(f"error: {role} report {path} must be a JSON object, "
              f"got {type(report).__name__}", file=sys.stderr)
        sys.exit(2)
    return report


def rows_by_name(report):
    # First row wins on duplicate names (setdefault): multi-thread-axis
    # reports emit one row per thread count under the same benchmark
    # name (only the config field differs), and the single-thread row is
    # emitted first, so baselines and currents both compare the
    # single-thread row — like-for-like regardless of the CI host's
    # core count.
    out = {}
    for row in report.get("rows", []):
        out.setdefault(row["benchmark"], row)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="fractional slowdown that triggers a warning")
    ap.add_argument("--verdict-json", metavar="PATH",
                    help="write the comparison as one machine-readable "
                         "JSON document")
    ap.add_argument("--history-append", metavar="PATH",
                    help="append this run's rows as one JSON line")
    ap.add_argument("--run-id", default="",
                    help="label for the history line (e.g. commit SHA)")
    args = ap.parse_args()

    base = rows_by_name(load_report(args.baseline, "baseline"))
    cur = rows_by_name(load_report(args.current, "current"))

    shared = sorted(set(base) & set(cur))
    verdict_rows = []
    regressed = 0
    if not shared:
        print("::warning::no common benchmark rows between "
              f"{args.baseline} and {args.current}")
    for name in shared:
        b = base[name].get("layouts_per_sec", 0.0)
        c = cur[name].get("layouts_per_sec", 0.0)
        if b <= 0:
            continue
        delta = (c - b) / b
        status = "ok"
        if delta < -args.threshold:
            regressed += 1
            status = "REGRESSED"
            print(f"::warning file=BENCH_replay.json::{name}: "
                  f"{c:.1f} layouts/sec vs baseline {b:.1f} "
                  f"({delta:+.1%})")
        print(f"{name:40s} {b:10.1f} -> {c:10.1f}  {delta:+7.1%}  {status}")
        verdict_rows.append({
            "benchmark": name,
            "baseline": b,
            "current": c,
            "delta": delta,
            "verdict": status,
        })

    if args.verdict_json:
        verdict = {
            "schema": "interf-bench-verdict-1",
            "threshold": args.threshold,
            "shared_rows": len(verdict_rows),
            "regressed_rows": regressed,
            "rows": verdict_rows,
        }
        with open(args.verdict_json, "w") as f:
            json.dump(verdict, f, indent=1)
            f.write("\n")
    if args.history_append:
        line = {
            "run_id": args.run_id,
            "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "threshold": args.threshold,
            "rows": [{"benchmark": r["benchmark"],
                      "layouts_per_sec": r["current"],
                      "delta": r["delta"]} for r in verdict_rows],
        }
        with open(args.history_append, "a") as f:
            f.write(json.dumps(line) + "\n")

    if not shared:
        return 0
    if regressed:
        print(f"{regressed}/{len(shared)} rows slower than baseline by "
              f"more than {args.threshold:.0%} (soft warning only: CI "
              "perf is noisy; refresh the baseline if this persists)")
    else:
        print(f"all {len(shared)} shared rows within {args.threshold:.0%} "
              "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
