#!/usr/bin/env python3
"""Compare a bench --json report against a committed baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.10]

For every row present in both reports (matched by benchmark name), the
current layouts_per_sec is compared against the baseline. Rows more than
the threshold slower are reported. CI hosts are shared and noisy, so a
regression is a soft warning — the script prints GitHub Actions
::warning:: annotations and always exits 0 — but the annotations land on
the PR, so a real regression is visible where the change is reviewed.

Stdlib only; the baseline lives at the repo root as BENCH_replay.json.
"""

import argparse
import json
import sys


def rows_by_name(report):
    # First row wins on duplicate names (setdefault): multi-thread-axis
    # reports emit one row per thread count under the same benchmark
    # name (only the config field differs), and the single-thread row is
    # emitted first, so baselines and currents both compare the
    # single-thread row — like-for-like regardless of the CI host's
    # core count.
    out = {}
    for row in report.get("rows", []):
        out.setdefault(row["benchmark"], row)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="fractional slowdown that triggers a warning")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = rows_by_name(json.load(f))
    with open(args.current) as f:
        cur = rows_by_name(json.load(f))

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("::warning::no common benchmark rows between "
              f"{args.baseline} and {args.current}")
        return 0

    regressed = 0
    for name in shared:
        b = base[name].get("layouts_per_sec", 0.0)
        c = cur[name].get("layouts_per_sec", 0.0)
        if b <= 0:
            continue
        delta = (c - b) / b
        status = "ok"
        if delta < -args.threshold:
            regressed += 1
            status = "REGRESSED"
            print(f"::warning file=BENCH_replay.json::{name}: "
                  f"{c:.1f} layouts/sec vs baseline {b:.1f} "
                  f"({delta:+.1%})")
        print(f"{name:40s} {b:10.1f} -> {c:10.1f}  {delta:+7.1%}  {status}")

    if regressed:
        print(f"{regressed}/{len(shared)} rows slower than baseline by "
              f"more than {args.threshold:.0%} (soft warning only: CI "
              "perf is noisy; refresh the baseline if this persists)")
    else:
        print(f"all {len(shared)} shared rows within {args.threshold:.0%} "
              "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
