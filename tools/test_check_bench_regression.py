#!/usr/bin/env python3
"""Self-test for check_bench_regression.py (stdlib only).

Runs the checker as a subprocess against temp-file fixtures and
asserts on exit codes and output — exactly how CI invokes it. Written
pytest-style (test_* functions with bare asserts) so it runs under
pytest if available, but `python3 tools/test_check_bench_regression.py`
executes every test with no third-party dependency.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_regression.py")


def run(*argv):
    return subprocess.run([sys.executable, SCRIPT, *argv],
                          capture_output=True, text=True)


def report(rows):
    return {"rows": [{"benchmark": n, "layouts_per_sec": v}
                     for n, v in rows]}


def write_json(tmpdir, name, payload):
    path = os.path.join(tmpdir, name)
    with open(path, "w") as f:
        if isinstance(payload, str):
            f.write(payload)
        else:
            json.dump(payload, f)
    return path


def test_identical_reports_pass():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json",
                          report([("replay", 100.0), ("opt", 50.0)]))
        cur = write_json(d, "cur.json",
                         report([("replay", 101.0), ("opt", 49.0)]))
        r = run(base, cur)
        assert r.returncode == 0, r.stderr
        assert "all 2 shared rows" in r.stdout


def test_regression_warns_but_exits_zero():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json", report([("replay", 100.0)]))
        cur = write_json(d, "cur.json", report([("replay", 50.0)]))
        r = run(base, cur)
        assert r.returncode == 0, r.stderr
        assert "::warning" in r.stdout
        assert "REGRESSED" in r.stdout


def test_missing_baseline_exits_two():
    with tempfile.TemporaryDirectory() as d:
        cur = write_json(d, "cur.json", report([("replay", 100.0)]))
        r = run(os.path.join(d, "nonexistent.json"), cur)
        assert r.returncode == 2, (r.returncode, r.stderr)
        assert "baseline report" in r.stderr
        assert "missing or unreadable" in r.stderr


def test_missing_current_exits_two():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json", report([("replay", 100.0)]))
        r = run(base, os.path.join(d, "nonexistent.json"))
        assert r.returncode == 2, (r.returncode, r.stderr)
        assert "current report" in r.stderr


def test_garbage_baseline_exits_two():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json", "{not json at all")
        cur = write_json(d, "cur.json", report([("replay", 100.0)]))
        r = run(base, cur)
        assert r.returncode == 2, (r.returncode, r.stderr)
        assert "not valid JSON" in r.stderr


def test_non_object_report_exits_two():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json", [1, 2, 3])
        cur = write_json(d, "cur.json", report([("replay", 100.0)]))
        r = run(base, cur)
        assert r.returncode == 2, (r.returncode, r.stderr)
        assert "must be a JSON object" in r.stderr


def test_verdict_json_records_each_row():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json",
                          report([("replay", 100.0), ("opt", 50.0)]))
        cur = write_json(d, "cur.json",
                         report([("replay", 40.0), ("opt", 51.0)]))
        verdict_path = os.path.join(d, "verdict.json")
        r = run(base, cur, "--verdict-json", verdict_path)
        assert r.returncode == 0, r.stderr
        with open(verdict_path) as f:
            v = json.load(f)
        assert v["schema"] == "interf-bench-verdict-1"
        assert v["shared_rows"] == 2
        assert v["regressed_rows"] == 1
        rows = {row["benchmark"]: row for row in v["rows"]}
        assert rows["replay"]["verdict"] == "REGRESSED"
        assert rows["replay"]["baseline"] == 100.0
        assert rows["replay"]["current"] == 40.0
        assert abs(rows["replay"]["delta"] - (-0.6)) < 1e-9
        assert rows["opt"]["verdict"] == "ok"


def test_history_append_accumulates_lines():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json", report([("replay", 100.0)]))
        cur = write_json(d, "cur.json", report([("replay", 99.0)]))
        hist = os.path.join(d, "hist.jsonl")
        for sha in ("aaa", "bbb"):
            r = run(base, cur, "--history-append", hist,
                    "--run-id", sha)
            assert r.returncode == 0, r.stderr
        with open(hist) as f:
            lines = [json.loads(ln) for ln in f if ln.strip()]
        assert [ln["run_id"] for ln in lines] == ["aaa", "bbb"]
        assert lines[0]["rows"][0]["benchmark"] == "replay"
        assert lines[0]["rows"][0]["layouts_per_sec"] == 99.0
        assert "utc" in lines[0]


def test_no_common_rows_soft_warns():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json", report([("a", 1.0)]))
        cur = write_json(d, "cur.json", report([("b", 1.0)]))
        r = run(base, cur)
        assert r.returncode == 0, r.stderr
        assert "no common benchmark rows" in r.stdout


def main():
    tests = [(n, f) for n, f in sorted(globals().items())
             if n.startswith("test_") and callable(f)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as e:
            failed += 1
            print(f"FAIL {name}: {e}")
    print(f"{len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
