/**
 * @file
 * Layout-space optimizer CLI.
 *
 * Runs one search (src/opt) over a benchmark's layout space using
 * batched replay as the fitness oracle, optionally compares it against
 * the best-of-N random baseline at the same evaluation budget, and
 * writes the machine-readable artifacts: the SearchTrajectory document
 * (docs/opt-trajectory.schema.json, --out) and a run manifest with the
 * optimizer summary in its "opt" field (docs/manifest.schema.json,
 * --manifest).
 *
 * Fixed --seed means a bit-identical trajectory at any --jobs and any
 * --batch, cold or warm store; --store makes repeated runs pure cache
 * hits (0 fresh measurements).
 *
 *   interf_opt --profile 403.gcc --strategy anneal --budget 96 \
 *              --baseline 96 --store /tmp/interf-store --json
 *   interf_opt --smoke --json     # CI-sized run, baseline included
 */

#include <cstdio>
#include <string>

#include "exec/threadpool.hh"
#include "opt/optimizer.hh"
#include "telemetry/manifest.hh"
#include "telemetry/metrics.hh"
#include "telemetry/progress.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "util/digest.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "workloads/spec.hh"

using namespace interf;
using namespace interf::opt;

namespace
{

workloads::WorkloadProfile
profileFor(const std::string &name)
{
    if (workloads::isSuiteBenchmark(name))
        return workloads::specFor(name).profile;
    return workloads::defaultProfile(name);
}

double
improvementPct(u64 initial, u64 final_cycles)
{
    if (initial == 0)
        return 0.0;
    return 100.0 * (static_cast<double>(initial) -
                    static_cast<double>(final_cycles)) /
           static_cast<double>(initial);
}

Json
resultJson(const OptResult &res)
{
    const SearchTrajectory &traj = res.trajectory;
    Json doc = Json::object();
    doc.set("strategy", traj.strategy);
    doc.set("seed", traj.seed);
    doc.set("budget", traj.budget);
    doc.set("base_key", digestHex(traj.baseKey));
    doc.set("initial_cycles", traj.initialCycles);
    doc.set("final_cycles", traj.finalCycles);
    doc.set("final_digest", digestHex(traj.finalDigest));
    doc.set("improvement_pct",
            improvementPct(traj.initialCycles, traj.finalCycles));
    doc.set("evals_fresh", res.freshEvals);
    doc.set("evals_cached", res.cachedEvals);
    doc.set("trajectory_steps", traj.steps.size());
    return doc;
}

/** The manifest "opt" member (docs/manifest.schema.json). */
Json
optSummary(const OptResult &res)
{
    const SearchTrajectory &traj = res.trajectory;
    Json opt = Json::object();
    opt.set("strategy", traj.strategy);
    opt.set("seed", traj.seed);
    opt.set("budget", traj.budget);
    opt.set("evals_fresh", res.freshEvals);
    opt.set("evals_cached", res.cachedEvals);
    opt.set("initial_cycles", traj.initialCycles);
    opt.set("final_cycles", traj.finalCycles);
    opt.set("improvement_pct",
            improvementPct(traj.initialCycles, traj.finalCycles));
    opt.set("trajectory_steps", traj.steps.size());
    return opt;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("interf_opt",
                      "search the layout space of one benchmark using "
                      "batched replay as the fitness oracle");
    opts.addString("profile", "toy",
                   "benchmark: a suite name (e.g. 403.gcc) or a "
                   "default-profile name");
    opts.addString("strategy", "greedy",
                   "search strategy: greedy | anneal");
    opts.addInt("budget", 64, "total candidate evaluations");
    opts.addInt("seed", 1, "search seed (proposals + acceptance)");
    opts.addInt("batch", 4,
                "layouts measured per replay pass (execution knob; "
                "never changes results)");
    opts.addInt("jobs", 1,
                "measurement worker threads, 0 = hardware threads "
                "(execution knob; never changes results)");
    opts.addInt("proposals", 4, "candidates proposed per search step");
    opts.addInt("blame-layouts", 8,
                "random seed layouts measured first to weight move "
                "kinds by per-event r^2 blame");
    opts.addInt("instructions", 1'000'000, "trace instruction budget");
    opts.addInt("baseline", 0,
                "also evaluate best-of-N random layouts (0 = skip)");
    opts.addFlag("randomize-heap",
                 "include DieHard heap seeds in the search space");
    opts.addFlag("virtual-pages",
                 "disable physically-indexed L2 modeling");
    opts.addString("store", "",
                   "fitness store root (content-addressed measurement "
                   "cache); empty disables persistence");
    opts.addString("out", "", "write the trajectory JSON here");
    opts.addString("manifest", "", "write a run manifest JSON here");
    opts.addString("telemetry-out", "",
                   "enable telemetry and write the Perfetto-loadable "
                   "trace (with flow events), run artifacts and the "
                   "crash-safe flight log into this directory");
    opts.addFlag("progress",
                 "live progress ticker on stderr (TTY only; implies "
                 "telemetry)");
    opts.addFlag("json", "print the result summary as JSON on stdout");
    opts.addFlag("smoke",
                 "CI-sized preset: 150k instructions, budget 16, "
                 "baseline 16");
    opts.parse(argc, argv);

    const std::string telemetry_dir = opts.getString("telemetry-out");
    if (!telemetry_dir.empty())
        telemetry::setOutputDir(telemetry_dir);
    else if (opts.getFlag("progress"))
        telemetry::enable();
    if (opts.getFlag("progress"))
        telemetry::installStderrProgressTicker();

    const u64 start_ns = telemetry::nowNs();
    const auto phase_base = telemetry::phaseStats();

    OptConfig cfg;
    cfg.seed = static_cast<u64>(opts.getInt("seed"));
    cfg.budget = static_cast<u32>(opts.getInt("budget"));
    cfg.proposalsPerStep = static_cast<u32>(opts.getInt("proposals"));
    cfg.batchLanes = static_cast<u32>(opts.getInt("batch"));
    cfg.jobs = static_cast<u32>(opts.getInt("jobs"));
    cfg.blameLayouts = static_cast<u32>(opts.getInt("blame-layouts"));
    cfg.instructionBudget =
        static_cast<u64>(opts.getInt("instructions"));
    cfg.randomizeHeap = opts.getFlag("randomize-heap");
    cfg.physicalPages = !opts.getFlag("virtual-pages");
    cfg.storeDir = opts.getString("store");
    if (!parseStrategy(opts.getString("strategy"), cfg.strategy))
        fatal("unknown --strategy '%s' (greedy | anneal)",
              opts.getString("strategy").c_str());
    u32 baseline_n = static_cast<u32>(opts.getInt("baseline"));
    if (opts.getFlag("smoke")) {
        cfg.instructionBudget = 150'000;
        cfg.budget = 16;
        cfg.proposalsPerStep = 2;
        cfg.blameLayouts = 4; // Small seed pool: most of the budget walks.
        baseline_n = 16;
    }
    if (cfg.budget < 1)
        fatal("--budget must be >= 1");
    if (cfg.proposalsPerStep < 1)
        fatal("--proposals must be >= 1");

    workloads::WorkloadProfile profile =
        profileFor(opts.getString("profile"));

    FitnessOracle oracle(profile, cfg);
    auto optimizer = makeOptimizer(oracle, cfg);
    OptResult res = optimizer->run();

    bool have_baseline = baseline_n > 0;
    OptResult base;
    if (have_baseline) {
        OptConfig base_cfg = cfg;
        base_cfg.budget = baseline_n;
        base = bestOfRandom(oracle, base_cfg);
    }

    const std::string out_path = opts.getString("out");
    if (!out_path.empty())
        telemetry::writeFileAtomic(out_path, res.trajectory.dump());

    if (!telemetry_dir.empty() && telemetry::enabled())
        telemetry::writeChromeTrace(telemetry_dir + "/trace.json");

    const std::string manifest_path = opts.getString("manifest");
    if (!manifest_path.empty()) {
        telemetry::RunManifest manifest;
        manifest.benchmark = profile.name;
        manifest.configDigest = digestHex(oracle.baseKey());
        manifest.storeDir = cfg.storeDir;
        if (!cfg.storeDir.empty())
            manifest.storeKey = manifest.configDigest;
        manifest.instructionBudget = cfg.instructionBudget;
        manifest.jobs = exec::ThreadPool::resolveJobs(cfg.jobs);
        manifest.layoutsUsed =
            static_cast<u32>(res.freshEvals + res.cachedEvals +
                             base.freshEvals + base.cachedEvals);
        manifest.layoutsMeasured =
            static_cast<u32>(res.freshEvals + base.freshEvals);
        manifest.layoutsCached =
            static_cast<u32>(res.cachedEvals + base.cachedEvals);
        manifest.wallMs = (telemetry::nowNs() - start_ns) / 1e6;
        manifest.phases = telemetry::phaseStatsSince(phase_base);
        manifest.metrics =
            telemetry::Registry::global().snapshot().toJson();
        manifest.opt = optSummary(res);
        manifest.writeAtomic(manifest_path);
    }

    const SearchTrajectory &traj = res.trajectory;
    if (opts.getFlag("json")) {
        Json doc = Json::object();
        doc.set("schema", "interf-opt-result-1");
        doc.set("schema_version", 1);
        doc.set("benchmark", profile.name);
        doc.set("optimizer", resultJson(res));
        if (have_baseline) {
            doc.set("baseline", resultJson(base));
            doc.set("beats_baseline", res.bestSample.cycles <
                                          base.bestSample.cycles);
        }
        std::printf("%s\n", doc.dump(1).c_str());
    } else {
        std::printf("%s: %s search, budget %u, seed %llu\n",
                    profile.name.c_str(), traj.strategy.c_str(),
                    traj.budget,
                    static_cast<unsigned long long>(traj.seed));
        std::printf(
            "  start %llu cycles -> best %llu cycles (%.3f%% better)\n",
            static_cast<unsigned long long>(traj.initialCycles),
            static_cast<unsigned long long>(traj.finalCycles),
            improvementPct(traj.initialCycles, traj.finalCycles));
        std::printf("  %llu fresh + %llu cached evaluations, %zu "
                    "recorded proposals\n",
                    static_cast<unsigned long long>(res.freshEvals),
                    static_cast<unsigned long long>(res.cachedEvals),
                    traj.steps.size());
        if (have_baseline) {
            std::printf(
                "  best-of-%u random: %llu cycles -> optimizer %s\n",
                baseline_n,
                static_cast<unsigned long long>(base.bestSample.cycles),
                res.bestSample.cycles < base.bestSample.cycles
                    ? "WINS"
                    : "does not beat the baseline");
        }
        if (!out_path.empty())
            std::printf("  trajectory: %s\n", out_path.c_str());
        if (!manifest_path.empty())
            std::printf("  manifest:   %s\n", manifest_path.c_str());
    }
    flushLog();
    return 0;
}
