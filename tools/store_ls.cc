/**
 * @file
 * Inspect a campaign artifact store.
 *
 * Lists every campaign key under a store root with its batch table and
 * sample count; --verify additionally recomputes every batch's payload
 * checksum; --json emits the same inventory as one machine-readable
 * document (entry key, batch count, byte size, lint status and
 * diagnostics). Corrupt entries do not abort the listing: each entry is
 * first linted by the StoreVerifier pass (verify/verify.hh), and an
 * entry with errors is reported diagnostic-by-diagnostic while the
 * remaining entries still get listed.
 *
 * Exit codes: 0 = store clean, 1 = corrupt entries found, 2 = the
 * store root is missing or not a directory.
 *
 *   store_ls --dir /tmp/interf-store [--verify] [--json]
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "store/store.hh"
#include "util/digest.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "verify/verify.hh"

using namespace interf;

namespace
{

constexpr int kExitClean = 0;
constexpr int kExitCorrupt = 1;
constexpr int kExitNoStore = 2;

/** Total size in bytes of the regular files in one entry directory. */
u64
entryBytes(const std::filesystem::path &dir)
{
    u64 bytes = 0;
    std::error_code ec;
    for (const auto &f : std::filesystem::directory_iterator(dir, ec)) {
        if (f.is_regular_file(ec))
            bytes += static_cast<u64>(f.file_size(ec));
    }
    return bytes;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("store_ls",
                      "list (and optionally verify) the campaigns in an "
                      "artifact store");
    opts.addString("dir", "", "store root directory");
    opts.addFlag("verify", "recompute every batch's payload checksum");
    opts.addFlag("json",
                 "write the inventory as one JSON document on stdout");
    opts.parse(argc, argv);

    const std::string root = opts.getString("dir");
    const bool json = opts.getFlag("json");
    if (root.empty())
        fatal("--dir is required");
    if (!std::filesystem::is_directory(root)) {
        std::fprintf(stderr, "store_ls: '%s' is not a directory\n",
                     root.c_str());
        return kExitNoStore;
    }

    const bool deep = opts.getFlag("verify");
    u32 campaigns = 0;
    u32 corrupt = 0;
    u64 total_samples = 0;
    Json entries = Json::array();
    for (const auto &entry : std::filesystem::directory_iterator(root)) {
        if (!entry.is_directory())
            continue;
        u64 key = 0;
        if (!parseDigestHex(entry.path().filename().string(), key)) {
            warn("skipping '%s': not a campaign key directory",
                 entry.path().string().c_str());
            continue;
        }
        ++campaigns;

        Json ej = Json::object();
        ej.set("key", digestHex(key));
        ej.set("bytes", entryBytes(entry.path()));

        // Lint before opening: CampaignStore's own read path is
        // fail-closed (first corrupt byte is fatal), which is right
        // for a resuming campaign but would kill this listing.
        auto lint = verify::verifyStoreEntry(root, key, deep);
        if (!lint.ok()) {
            ++corrupt;
            if (json) {
                ej.set("lint", "corrupt");
                ej.set("samples", 0);
                ej.set("batches", 0);
                Json diags = Json::array();
                for (const auto &d : lint.diagnostics())
                    diags.push(d.text());
                ej.set("diagnostics", std::move(diags));
                entries.push(std::move(ej));
            } else {
                std::printf("%s  CORRUPT (%s)\n", digestHex(key).c_str(),
                            lint.summary().c_str());
                lint.printText(stdout);
            }
            continue;
        }

        store::CampaignStore st(root, key);
        if (json) {
            ej.set("lint", "ok");
            ej.set("samples", st.storedCount());
            ej.set("batches", st.batches().size());
            ej.set("diagnostics", Json::array());
            entries.push(std::move(ej));
        } else {
            std::printf("%s  %4u samples in %zu batches\n",
                        digestHex(key).c_str(), st.storedCount(),
                        st.batches().size());
            for (const auto &b : st.batches())
                std::printf(
                    "    batch-%08u  layouts [%u, %u)  checksum %s\n",
                    b.first, b.first, b.first + b.count,
                    digestHex(b.checksum).c_str());
            if (deep) {
                auto samples = st.loadSamples();
                std::printf("    verified %zu samples\n",
                            samples.size());
            }
        }
        total_samples += st.storedCount();
    }
    if (json) {
        Json doc = Json::object();
        doc.set("schema", "interf-store-ls-1");
        doc.set("schemaVersion", 1);
        doc.set("root", root);
        doc.set("verified", deep);
        doc.set("campaigns", campaigns);
        doc.set("corrupt", corrupt);
        doc.set("samples_total", total_samples);
        doc.set("entries", std::move(entries));
        std::printf("%s\n", doc.dump(1).c_str());
    } else {
        std::printf("%u campaigns, %llu samples total%s", campaigns,
                    static_cast<unsigned long long>(total_samples),
                    deep ? " (payloads verified)" : "");
        if (corrupt)
            std::printf(", %u CORRUPT", corrupt);
        std::printf("\n");
    }
    flushLog();
    return corrupt == 0 ? kExitClean : kExitCorrupt;
}
