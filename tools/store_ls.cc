/**
 * @file
 * Inspect a campaign artifact store.
 *
 * Lists every campaign key under a store root with its batch table and
 * sample count; --verify additionally loads and checksums every batch
 * (the same fail-closed validation a resuming campaign performs).
 *
 *   store_ls --dir /tmp/interf-store [--verify]
 */

#include <cstdio>
#include <filesystem>

#include "store/store.hh"
#include "util/digest.hh"
#include "util/logging.hh"
#include "util/options.hh"

using namespace interf;

int
main(int argc, char **argv)
{
    OptionParser opts("store_ls",
                      "list (and optionally verify) the campaigns in an "
                      "artifact store");
    opts.addString("dir", "", "store root directory");
    opts.addFlag("verify", "load and checksum every batch");
    opts.parse(argc, argv);

    const std::string root = opts.getString("dir");
    if (root.empty())
        fatal("--dir is required");
    if (!std::filesystem::is_directory(root))
        fatal("'%s' is not a directory", root.c_str());

    const bool verify = opts.getFlag("verify");
    u32 campaigns = 0;
    u64 total_samples = 0;
    for (const auto &entry : std::filesystem::directory_iterator(root)) {
        if (!entry.is_directory())
            continue;
        u64 key = 0;
        if (!parseDigestHex(entry.path().filename().string(), key)) {
            warn("skipping '%s': not a campaign key directory",
                 entry.path().string().c_str());
            continue;
        }
        store::CampaignStore st(root, key);
        std::printf("%s  %4u samples in %zu batches\n",
                    digestHex(key).c_str(), st.storedCount(),
                    st.batches().size());
        for (const auto &b : st.batches())
            std::printf("    batch-%08u  layouts [%u, %u)  checksum %s\n",
                        b.first, b.first, b.first + b.count,
                        digestHex(b.checksum).c_str());
        if (verify) {
            auto samples = st.loadSamples(); // fatal()s on corruption
            std::printf("    verified %zu samples\n", samples.size());
        }
        ++campaigns;
        total_samples += st.storedCount();
    }
    std::printf("%u campaigns, %llu samples total%s\n", campaigns,
                static_cast<unsigned long long>(total_samples),
                verify ? " (all verified)" : "");
    return 0;
}
