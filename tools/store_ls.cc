/**
 * @file
 * Inspect a campaign artifact store.
 *
 * Lists every campaign key under a store root with its batch table and
 * sample count; --verify additionally recomputes every batch's payload
 * checksum. Corrupt entries do not abort the listing: each entry is
 * first linted by the StoreVerifier pass (verify/verify.hh), and an
 * entry with errors is reported diagnostic-by-diagnostic while the
 * remaining entries still get listed. The exit code is 1 when any
 * entry had errors, 0 otherwise.
 *
 *   store_ls --dir /tmp/interf-store [--verify]
 */

#include <cstdio>
#include <filesystem>

#include "store/store.hh"
#include "util/digest.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "verify/verify.hh"

using namespace interf;

int
main(int argc, char **argv)
{
    OptionParser opts("store_ls",
                      "list (and optionally verify) the campaigns in an "
                      "artifact store");
    opts.addString("dir", "", "store root directory");
    opts.addFlag("verify", "recompute every batch's payload checksum");
    opts.parse(argc, argv);

    const std::string root = opts.getString("dir");
    if (root.empty())
        fatal("--dir is required");
    if (!std::filesystem::is_directory(root))
        fatal("'%s' is not a directory", root.c_str());

    const bool deep = opts.getFlag("verify");
    u32 campaigns = 0;
    u32 corrupt = 0;
    u64 total_samples = 0;
    for (const auto &entry : std::filesystem::directory_iterator(root)) {
        if (!entry.is_directory())
            continue;
        u64 key = 0;
        if (!parseDigestHex(entry.path().filename().string(), key)) {
            warn("skipping '%s': not a campaign key directory",
                 entry.path().string().c_str());
            continue;
        }
        ++campaigns;

        // Lint before opening: CampaignStore's own read path is
        // fail-closed (first corrupt byte is fatal), which is right
        // for a resuming campaign but would kill this listing.
        auto lint = verify::verifyStoreEntry(root, key, deep);
        if (!lint.ok()) {
            ++corrupt;
            std::printf("%s  CORRUPT (%s)\n", digestHex(key).c_str(),
                        lint.summary().c_str());
            lint.printText(stdout);
            continue;
        }

        store::CampaignStore st(root, key);
        std::printf("%s  %4u samples in %zu batches\n",
                    digestHex(key).c_str(), st.storedCount(),
                    st.batches().size());
        for (const auto &b : st.batches())
            std::printf("    batch-%08u  layouts [%u, %u)  checksum %s\n",
                        b.first, b.first, b.first + b.count,
                        digestHex(b.checksum).c_str());
        if (deep) {
            auto samples = st.loadSamples();
            std::printf("    verified %zu samples\n", samples.size());
        }
        total_samples += st.storedCount();
    }
    std::printf("%u campaigns, %llu samples total%s", campaigns,
                static_cast<unsigned long long>(total_samples),
                deep ? " (payloads verified)" : "");
    if (corrupt)
        std::printf(", %u CORRUPT", corrupt);
    std::printf("\n");
    return corrupt == 0 ? 0 : 1;
}
