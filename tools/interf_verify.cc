/**
 * @file
 * Run the artifact verifier passes from the command line.
 *
 * Front-end to src/verify: builds or loads the requested artifacts and
 * runs every applicable pass, printing diagnostics as text (default) or
 * JSON (--json). The exit code is the machine-readable verdict:
 *
 *   0  every requested artifact verified clean (warnings allowed);
 *   1  at least one error-severity diagnostic;
 *   2  usage error (unknown profile, missing required flag, ...).
 *
 * Examples:
 *   interf_verify --profile 400.perlbench --budget 200000 --layouts 8
 *   interf_verify --profile 429.mcf --trace /tmp/mcf.trace
 *   interf_verify --store /tmp/interf-store --json
 *   interf_verify --store /tmp/interf-store --key 1234abcd5678ef01
 */

#include <cstdio>
#include <string>

#include "layout/linker.hh"
#include "layout/pagemap.hh"
#include "trace/generator.hh"
#include "trace/io.hh"
#include "trace/replay.hh"
#include "util/digest.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "verify/verify.hh"
#include "workloads/builder.hh"
#include "workloads/spec.hh"

using namespace interf;

namespace
{

constexpr int kExitClean = 0;
constexpr int kExitDiagnostics = 1;
constexpr int kExitUsage = 2;

int
usageError(const char *msg)
{
    std::fprintf(stderr, "interf_verify: %s\n", msg);
    return kExitUsage;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("interf_verify",
                      "run the static-analysis verifier passes over "
                      "interferometry artifacts");
    opts.addString("profile", "",
                   "suite benchmark whose program to build and verify "
                   "(e.g. 400.perlbench)");
    opts.addInt("budget", 0,
                "instruction budget: generate a trace of this size and "
                "verify trace + replay plan (requires --profile)");
    opts.addInt("layouts", 0,
                "link this many seeded layouts and verify placements "
                "and page maps (requires --profile)");
    opts.addString("trace", "",
                   "trace file to lint against the profile's program "
                   "(requires --profile)");
    opts.addString("store", "", "artifact store root to verify");
    opts.addString("key", "",
                   "verify only this campaign key under --store "
                   "(16-digit hex, as printed by store_ls)");
    opts.addFlag("shallow",
                 "skip batch payload checksum recomputation in store "
                 "verification");
    opts.addFlag("json", "print diagnostics as JSON on stdout");
    opts.parse(argc, argv);

    const std::string profile_name = opts.getString("profile");
    const std::string trace_path = opts.getString("trace");
    const std::string store_root = opts.getString("store");
    const std::string key_text = opts.getString("key");
    const i64 budget = opts.getInt("budget");
    const i64 layouts = opts.getInt("layouts");

    if (profile_name.empty() && store_root.empty())
        return usageError("nothing to verify: pass --profile and/or "
                          "--store (see --help)");
    if (profile_name.empty() &&
        (budget > 0 || layouts > 0 || !trace_path.empty()))
        return usageError("--budget, --layouts and --trace require "
                          "--profile");
    if (!key_text.empty() && store_root.empty())
        return usageError("--key requires --store");
    if (budget < 0 || layouts < 0)
        return usageError("--budget and --layouts must be >= 0");

    verify::VerifyResult all;

    if (!profile_name.empty()) {
        if (!workloads::isSuiteBenchmark(profile_name))
            return usageError(strprintf("unknown profile '%s' (see "
                                        "workloads/spec.hh)",
                                        profile_name.c_str())
                                  .c_str());
        const auto &profile = workloads::specFor(profile_name).profile;
        const trace::Program prog = workloads::buildProgram(profile);
        const std::string label = "profile:" + profile_name;
        all.merge(verify::verifyProgram(prog, label));

        if (budget > 0) {
            trace::TraceGenerator gen(prog, profile.behaviourSeed);
            const trace::Trace tr =
                gen.makeTrace(static_cast<u64>(budget));
            all.merge(verify::verifyTrace(prog, tr, label + ":trace"));
            const trace::ReplayPlan plan(prog, tr);
            all.merge(
                verify::verifyPlan(prog, tr, plan, label + ":plan"));
        }

        const layout::Linker linker;
        for (i64 i = 0; i < layouts; ++i) {
            layout::LayoutKey key;
            key.seed = static_cast<u64>(i);
            const layout::CodeLayout code = linker.link(prog, key);
            all.merge(verify::verifyLayout(
                prog, code,
                strprintf("%s:layout[%lld]", label.c_str(),
                          static_cast<long long>(i))));
            const layout::PageMap pages(static_cast<u64>(i) + 1);
            verify::verifyPageMap(
                pages, 1u << 14,
                strprintf("%s:pagemap[%lld]", label.c_str(),
                          static_cast<long long>(i)),
                all);
        }

        if (!trace_path.empty())
            all.merge(verify::verifyTraceFile(trace_path, prog));
    }

    if (!store_root.empty()) {
        const bool deep = !opts.getFlag("shallow");
        if (!key_text.empty()) {
            u64 key = 0;
            if (!parseDigestHex(key_text, key))
                return usageError("--key must be a 16-digit hex "
                                  "campaign key");
            all.merge(verify::verifyStoreEntry(store_root, key, deep));
        } else {
            all.merge(verify::verifyStoreRoot(store_root, deep));
        }
    }

    if (opts.getFlag("json"))
        std::printf("%s\n", all.toJson().c_str());
    else
        all.printText(stdout);
    return all.ok() ? kExitClean : kExitDiagnostics;
}
