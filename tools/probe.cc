#include <cstdio>
#include <ctime>
#include <vector>

#include "interferometry/campaign.hh"
#include "interferometry/model.hh"
#include "stats/descriptive.hh"
#include "workloads/spec.hh"

using namespace interf;

int
main(int argc, char **argv)
{
    u32 layouts = argc > 1 ? atoi(argv[1]) : 12;
    u64 insts = argc > 2 ? atoll(argv[2]) : 500000;
    const char *only = argc > 3 ? argv[3] : nullptr;
    std::printf("%-16s %7s %7s %7s %7s %7s %7s %7s %7s %6s %6s\n",
                "bench", "cpi", "sdCpi", "mpki", "sdMpki", "l1i",
                "l2", "slope", "icept", "r2", "t");
    for (const auto &entry : workloads::specSuite()) {
        if (only && entry.profile.name.find(only) == std::string::npos)
            continue;
        std::clock_t t0 = std::clock();
        interferometry::CampaignConfig cfg;
        cfg.instructionBudget = insts;
        cfg.initialLayouts = layouts;
        cfg.maxLayouts = layouts;
        interferometry::Campaign camp(entry.profile, cfg);
        auto samples = camp.measureLayouts(0, layouts);
        std::vector<double> cpi, mpki;
        for (auto &m : samples) { cpi.push_back(m.cpi); mpki.push_back(m.mpki); }
        interferometry::PerformanceModel model(entry.profile.name, samples);
        double sec = double(std::clock() - t0) / CLOCKS_PER_SEC;
        std::printf("%-16s %7.3f %7.4f %7.3f %7.4f %7.3f %7.3f %7.3f %7.3f %6.2f %6.2f  (%4.1fs, insts=%llu ev=%zu)\n",
                    entry.profile.name.c_str(),
                    stats::mean(cpi), samples.size()>1?stats::sampleStdDev(cpi):0,
                    stats::mean(mpki), samples.size()>1?stats::sampleStdDev(mpki):0,
                    model.meanL1iMpki(), model.meanL2Mpki(),
                    model.branchModel().fit.slope(),
                    model.branchModel().fit.intercept(),
                    model.branchModel().fit.r2(),
                    model.branchModel().test.statistic,
                    sec,
                    (unsigned long long)camp.trace().instCount,
                    camp.trace().events.size());
        std::fflush(stdout);
    }
    return 0;
}
