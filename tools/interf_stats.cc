/**
 * @file
 * Pretty-print, dump, or diff campaign run manifests.
 *
 * A run manifest (telemetry/manifest.hh) is the per-campaign record
 * the telemetry layer writes next to the artifact store and/or into
 * the --telemetry-out directory. This tool renders one human-readably,
 * re-emits it as canonical JSON (--json), or compares two runs of the
 * same campaign (--diff): wall time, layouts/sec, cache hit counts and
 * per-phase durations side by side — the quickest way to see what a
 * change did to a campaign's time budget.
 *
 * Exit codes: 0 = success, 1 = a manifest failed to parse or
 * validate, 2 = usage error.
 *
 *   interf_stats --manifest run.json [--json]
 *   interf_stats --manifest before.json --diff after.json
 */

#include <cstdio>
#include <map>
#include <string>

#include "telemetry/manifest.hh"
#include "util/logging.hh"
#include "util/options.hh"

using namespace interf;
using telemetry::RunManifest;

namespace
{

constexpr int kExitOk = 0;
constexpr int kExitBadManifest = 1;
constexpr int kExitUsage = 2;

void
printManifest(const RunManifest &m)
{
    std::printf("campaign %s  (config %s)\n", m.benchmark.c_str(),
                m.configDigest.c_str());
    std::printf("  budget       %llu instructions, %u jobs\n",
                static_cast<unsigned long long>(m.instructionBudget),
                m.jobs);
    std::printf("  layouts      %u used: %u measured, %u cached\n",
                m.layoutsUsed, m.layoutsMeasured, m.layoutsCached);
    std::printf("  wall         %.1f ms  (%.1f layouts/sec)\n", m.wallMs,
                m.layoutsPerSec);
    if (!m.storeDir.empty())
        std::printf("  store        %s  (%llu batches, %.1f ms commit)\n",
                    m.storeDir.c_str(),
                    static_cast<unsigned long long>(
                        m.storeBatchesCommitted),
                    m.storeCommitMs);
    std::printf("  verify       %llu errors, %llu warnings\n",
                static_cast<unsigned long long>(m.verifyErrors),
                static_cast<unsigned long long>(m.verifyWarnings));
    std::printf("  log          %llu warns, %llu informs\n",
                static_cast<unsigned long long>(m.logWarns),
                static_cast<unsigned long long>(m.logInforms));
    for (const auto &msg : m.recentWarnings)
        std::printf("    warn: %s\n", msg.c_str());
    if (m.spansDropped > 0) {
        std::printf("  spans        %llu dropped by ring overflow "
                    "(trace is incomplete)\n",
                    static_cast<unsigned long long>(m.spansDropped));
        for (const auto &[name, count] : m.spansDroppedByName)
            std::printf("    %-20s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(count));
    }
    if (m.regressionRan) {
        std::printf("  regression   cpi = %.6f * mpki + %.6f  (r2 %.4f)\n",
                    m.slope, m.intercept, m.r2);
        std::printf("               %s%s\n",
                    m.regressionSignificant ? "significant"
                                            : "not significant",
                    m.enoughMpkiRange ? ""
                                      : ", not enough range of MPKI");
    }
    if (!m.phases.empty()) {
        std::printf("  %-20s %8s %12s %12s\n", "phase", "count",
                    "wall ms", "thread ms");
        for (const auto &p : m.phases)
            std::printf("  %-20s %8llu %12.1f %12.1f\n", p.name.c_str(),
                        static_cast<unsigned long long>(p.count),
                        p.wallMs, p.threadMs);
    }
}

void
printDiff(const RunManifest &a, const RunManifest &b)
{
    if (a.configDigest != b.configDigest)
        warn("comparing different campaigns (config %s vs %s)",
             a.configDigest.c_str(), b.configDigest.c_str());
    std::printf("campaign %s:  A -> B\n", a.benchmark.c_str());
    std::printf("  wall         %10.1f -> %10.1f ms  (%+.1f%%)\n",
                a.wallMs, b.wallMs,
                a.wallMs > 0 ? (b.wallMs - a.wallMs) / a.wallMs * 100
                             : 0.0);
    std::printf("  layouts/sec  %10.1f -> %10.1f\n", a.layoutsPerSec,
                b.layoutsPerSec);
    std::printf("  measured     %10u -> %10u\n", a.layoutsMeasured,
                b.layoutsMeasured);
    std::printf("  cached       %10u -> %10u\n", a.layoutsCached,
                b.layoutsCached);
    std::printf("  %-20s %12s %12s %10s\n", "phase", "A wall ms",
                "B wall ms", "delta");
    std::map<std::string, std::pair<double, double>> phases;
    for (const auto &p : a.phases)
        phases[p.name].first = p.wallMs;
    for (const auto &p : b.phases)
        phases[p.name].second = p.wallMs;
    for (const auto &[name, wall] : phases)
        std::printf("  %-20s %12.1f %12.1f %+10.1f\n", name.c_str(),
                    wall.first, wall.second, wall.second - wall.first);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("interf_stats",
                      "pretty-print, dump, or diff campaign run "
                      "manifests");
    opts.addString("manifest", "", "run manifest to read");
    opts.addString("diff", "",
                   "second manifest: show what changed from "
                   "--manifest to this one");
    opts.addFlag("json", "re-emit the manifest as canonical JSON");
    opts.parse(argc, argv);

    const std::string path = opts.getString("manifest");
    const std::string diff_path = opts.getString("diff");
    if (path.empty()) {
        std::fprintf(stderr, "interf_stats: --manifest is required\n");
        return kExitUsage;
    }
    if (opts.getFlag("json") && !diff_path.empty()) {
        std::fprintf(stderr,
                     "interf_stats: --json and --diff are exclusive\n");
        return kExitUsage;
    }

    RunManifest manifest;
    std::string error;
    if (!manifest.load(path, &error)) {
        std::fprintf(stderr, "interf_stats: %s: %s\n", path.c_str(),
                     error.c_str());
        return kExitBadManifest;
    }

    if (!diff_path.empty()) {
        RunManifest other;
        if (!other.load(diff_path, &error)) {
            std::fprintf(stderr, "interf_stats: %s: %s\n",
                         diff_path.c_str(), error.c_str());
            return kExitBadManifest;
        }
        printDiff(manifest, other);
    } else if (opts.getFlag("json")) {
        std::printf("%s", manifest.dump().c_str());
    } else {
        printManifest(manifest);
    }
    flushLog();
    return kExitOk;
}
